// Word count over synthetic documents — the canonical MapReduce workload,
// used here to exercise redundancy-validated map and reduce phases.
//
// Words are integer ids drawn from a Zipf-ish distribution; documents are
// generated from a seed, so the exact ground-truth histogram is known and
// end-to-end output accuracy can be scored.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"

namespace smartred::mapreduce {

using WordId = std::int32_t;
/// word -> count; std::map keeps deterministic iteration for fingerprints.
using WordCounts = std::map<WordId, std::int64_t>;

/// A corpus of synthetic documents.
class Corpus {
 public:
  /// Generates `documents` documents of `words_per_document` words each,
  /// drawn from a vocabulary of `vocabulary` ids with a heavy-tailed
  /// (approximately Zipf) frequency profile. Requires all counts > 0.
  Corpus(std::size_t documents, std::size_t words_per_document,
         WordId vocabulary, rng::Stream rng);

  [[nodiscard]] std::size_t document_count() const { return docs_.size(); }
  [[nodiscard]] const std::vector<WordId>& document(std::size_t index) const;
  [[nodiscard]] WordId vocabulary() const { return vocabulary_; }

  /// Ground truth: the exact corpus-wide histogram.
  [[nodiscard]] WordCounts true_counts() const;

  /// Map-side computation: histogram of documents [begin, end).
  [[nodiscard]] WordCounts count_range(std::size_t begin,
                                       std::size_t end) const;

 private:
  std::vector<std::vector<WordId>> docs_;
  WordId vocabulary_;
};

/// Stable 32-bit fingerprint of a word-count table. Redundancy voting
/// compares fingerprints of job outputs — exactly how BOINC-style
/// validators compare output checksums.
[[nodiscard]] std::int32_t fingerprint(const WordCounts& counts);

/// Merges `extra` into `into` (adding counts).
void merge_counts(WordCounts& into, const WordCounts& extra);

/// Deterministic corruption of a count table — what an accepted-but-wrong
/// task contributes downstream. Every count is shifted and one phantom
/// word is injected, so corruption is always detectable against truth.
[[nodiscard]] WordCounts corrupt_counts(const WordCounts& counts);

/// Fraction of vocabulary words whose final count matches the truth
/// (missing words count as wrong when the truth has them, and vice versa).
[[nodiscard]] double accuracy(const WordCounts& result,
                              const WordCounts& truth);

}  // namespace smartred::mapreduce
