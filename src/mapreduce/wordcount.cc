#include "mapreduce/wordcount.h"

#include <cmath>

#include "common/expect.h"

namespace smartred::mapreduce {

Corpus::Corpus(std::size_t documents, std::size_t words_per_document,
               WordId vocabulary, rng::Stream rng)
    : vocabulary_(vocabulary) {
  SMARTRED_EXPECT(documents > 0, "corpus needs at least one document");
  SMARTRED_EXPECT(words_per_document > 0, "documents need words");
  SMARTRED_EXPECT(vocabulary > 0, "vocabulary must be positive");
  docs_.reserve(documents);
  for (std::size_t d = 0; d < documents; ++d) {
    std::vector<WordId> doc;
    doc.reserve(words_per_document);
    for (std::size_t w = 0; w < words_per_document; ++w) {
      // Approximate Zipf: squaring a uniform skews mass toward low ids.
      const double u = rng.uniform01();
      const auto word = static_cast<WordId>(
          u * u * static_cast<double>(vocabulary));
      doc.push_back(word >= vocabulary ? vocabulary - 1 : word);
    }
    docs_.push_back(std::move(doc));
  }
}

const std::vector<WordId>& Corpus::document(std::size_t index) const {
  SMARTRED_EXPECT(index < docs_.size(), "document index out of range");
  return docs_[index];
}

WordCounts Corpus::true_counts() const {
  return count_range(0, docs_.size());
}

WordCounts Corpus::count_range(std::size_t begin, std::size_t end) const {
  SMARTRED_EXPECT(begin <= end && end <= docs_.size(),
                  "document range out of bounds");
  WordCounts counts;
  for (std::size_t d = begin; d < end; ++d) {
    for (const WordId word : docs_[d]) ++counts[word];
  }
  return counts;
}

std::int32_t fingerprint(const WordCounts& counts) {
  // FNV-1a over the (word, count) pairs in sorted (map) order, folded to
  // 32 bits. Deterministic across platforms for our integer data.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const auto& [word, count] : counts) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(word)));
    mix(static_cast<std::uint64_t>(count));
  }
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(hash ^ (hash >> 32)));
}

void merge_counts(WordCounts& into, const WordCounts& extra) {
  for (const auto& [word, count] : extra) into[word] += count;
}

WordCounts corrupt_counts(const WordCounts& counts) {
  // A plausible-but-wrong table: a fraction of the entries are off by one,
  // plus a phantom word no honest run produces. Keeping most entries intact
  // models realistic corruption (bit flips, truncated partial results) and
  // lets output accuracy degrade gradually with the number of corrupted
  // tasks instead of collapsing to zero.
  WordCounts corrupted = counts;
  std::size_t index = 0;
  for (auto& [word, count] : corrupted) {
    if (index++ % 8 == 0) ++count;
  }
  corrupted[-1] += 1;
  return corrupted;
}

double accuracy(const WordCounts& result, const WordCounts& truth) {
  std::size_t checked = 0;
  std::size_t matching = 0;
  for (const auto& [word, count] : truth) {
    ++checked;
    const auto found = result.find(word);
    if (found != result.end() && found->second == count) ++matching;
  }
  for (const auto& [word, count] : result) {
    if (!truth.contains(word)) ++checked;  // spurious word: counted wrong
  }
  if (checked == 0) return 1.0;
  return static_cast<double>(matching) / static_cast<double>(checked);
}

}  // namespace smartred::mapreduce
