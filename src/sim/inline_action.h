// A small-buffer, non-allocating replacement for std::function<void()> on
// the simulator's hot path.
//
// Every scheduled event carries a callback. With std::function, any capture
// list beyond two words heap-allocates — one allocation per scheduled event,
// millions per figure bench. InlineAction stores the callable inline in a
// fixed 48-byte buffer and *rejects at compile time* anything larger: a
// capture list that does not fit is a build error telling you to shrink it,
// never a silent allocation. The budget is sized to the largest capture the
// domain models need (boinc/deployment.cc: this + client + task + job_id +
// value = 40 bytes) with one word of headroom; a whole std::function (32
// bytes on common ABIs) also fits, so composed/recursive actions still work.
//
// Move-only (events are scheduled once and fired once; nothing copies
// actions), nothrow-movable (required so the slot arena can relocate and
// the event vector can grow), and callable exactly like std::function.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace smartred::sim {

class InlineAction {
 public:
  /// The inline storage budget. Raising it enlarges every event slot in the
  /// simulator arena — shrink oversized capture lists instead (capture
  /// indices, not copies of aggregates).
  static constexpr std::size_t kCapacity = 48;
  static constexpr std::size_t kAlignment = alignof(std::max_align_t);

  InlineAction() = default;

  /// Wraps any void() callable. Implicit, so call sites keep passing plain
  /// lambdas to Simulator::schedule().
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  /// Constructs a callable directly into the inline buffer. Requires *this
  /// to be empty: this is the arena's fast path (the slot was just
  /// acquired, so there is nothing to destroy), and skipping the emptiness
  /// check is what lets a Simulator::schedule() call compile down to a
  /// placement-new into the slot with no intermediate InlineAction.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "capture list exceeds InlineAction's 48-byte inline "
                  "budget: shrink it (capture ids/indices, not objects)");
    static_assert(alignof(Fn) <= kAlignment,
                  "capture alignment exceeds InlineAction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-movable so the event arena can "
                  "relocate actions");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* storage) {
      (*std::launder(reinterpret_cast<Fn*>(storage)))();
    };
    // Trivially copyable callables (the overwhelmingly common case: a few
    // pointers and integers) relocate by memcpy with no manager call.
    if constexpr (!std::is_trivially_copyable_v<Fn> ||
                  !std::is_trivially_destructible_v<Fn>) {
      manage_ = [](Operation op, void* self, void* other) {
        Fn* fn_self = std::launder(reinterpret_cast<Fn*>(self));
        if (op == Operation::kRelocate) {
          ::new (other) Fn(std::move(*fn_self));
        }
        fn_self->~Fn();
      };
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  /// Invokes the stored callable. Requires *this to hold one.
  void operator()() { invoke_(storage_); }

  /// True when a callable is stored.
  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the stored callable (if any), leaving *this empty.
  void reset() {
    if (invoke_ == nullptr) return;
    if (manage_ != nullptr) manage_(Operation::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Operation { kRelocate, kDestroy };

  void move_from(InlineAction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Operation::kRelocate, other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kCapacity);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(kAlignment) std::byte storage_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Operation, void*, void*) = nullptr;
};

static_assert(sizeof(InlineAction) == InlineAction::kCapacity + 16,
              "InlineAction should be its buffer plus two function pointers");

}  // namespace smartred::sim
