// Discrete-event simulation kernel.
//
// This is the repository's stand-in for the XDEVS simulator the paper uses
// in Section 4.1: a deterministic event queue over continuous simulated
// time. Events scheduled for the same timestamp fire in FIFO scheduling
// order (stable by sequence number), which makes entire simulation runs
// reproducible from their RNG seed alone.
//
// The kernel is deliberately small: schedule / cancel / run. The domain
// models (DCA task server, volunteer-computing clients) are ordinary objects
// that hold a Simulator& and schedule callbacks on themselves; there is no
// component/port framework to fight.
//
// Internals — generation-tagged slot arena (zero-allocation steady state):
//
//  * Event actions live in a recycled slab of fixed-size slots
//    (std::vector<Slot>, grown once and reused forever via an intrusive
//    free list). An action is a 48-byte small-buffer InlineAction, so
//    neither the slot nor the callback it stores ever touches the heap on
//    the steady-state schedule→fire path.
//  * Ordering is an implicit 4-ary min-heap of plain (time, sequence, slot,
//    generation) keys in a second recycled vector — no node allocations, no
//    per-event hashing, and a shallower tree than a binary heap for the
//    same backlog.
//  * EventId is {slot, generation}. Each slot carries a generation counter
//    that is incremented when the slot is allocated (odd = pending) and
//    again when it is retired (even = free). cancel() is a bounds check
//    plus a generation compare: stale handles — already fired, already
//    cancelled, recycled slot (the ABA case), or never issued — simply
//    fail the compare. A cancelled event's heap key stays in the heap as a
//    tombstone (its generation no longer matches) and is discarded when it
//    reaches the top.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "sim/inline_action.h"

namespace smartred::obs {
class Recorder;
}

namespace smartred::sim {

/// Simulated time, in abstract "time units" (the paper's job durations are
/// uniform in [0.5, 1.5] of these units).
using Time = double;

/// Opaque handle identifying a scheduled event; usable with cancel().
/// A default-constructed EventId never identifies a live event.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;  ///< odd while pending; 0 = never issued
  friend bool operator==(EventId, EventId) = default;
};

/// A discrete-event simulator.
///
/// Not thread-safe: a simulation run is a single logical thread of control
/// (real time is irrelevant, so there is nothing to parallelize inside one
/// run; experiments parallelize across runs).
class Simulator {
 public:
  using Action = InlineAction;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events executed so far (for throughput reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (scheduled, not yet fired or
  /// cancelled).
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Schedules a callable to run `delay` time units from now.
  /// Requires delay >= 0. Returns a handle usable with cancel().
  ///
  /// Lambdas take this templated overload: the callable is placement-
  /// constructed directly into its arena slot (no intermediate Action
  /// object, no relocation), and the whole fast path inlines at the call
  /// site.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId schedule(Time delay, F&& fn) {
    SMARTRED_EXPECT(delay >= 0.0, "cannot schedule an event in the past");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules a pre-built Action (e.g. one handed through a queue).
  EventId schedule(Time delay, Action&& action);

  /// Schedules a callable at an absolute simulated time.
  /// Requires when >= now().
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId schedule_at(Time when, F&& fn) {
    SMARTRED_EXPECT(when >= now_, "cannot schedule an event before now()");
    const std::uint32_t slot = acquire_slot();
    slots_[slot].action.emplace(std::forward<F>(fn));
    return commit_schedule(when, slot);
  }

  /// Schedules a pre-built Action at an absolute simulated time.
  EventId schedule_at(Time when, Action&& action);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, or
  /// unknown). Cancelling is O(1); the heap key is discarded lazily.
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final simulated time.
  Time run();

  /// Runs events with timestamp <= `until`, then sets now() to `until`
  /// (even if the queue emptied earlier). Returns now().
  Time run_until(Time until);

  /// Executes at most `max_events` events. Returns the number executed
  /// (less than max_events only if the queue emptied).
  std::uint64_t step(std::uint64_t max_events);

  /// Attaches a flight recorder (or detaches with nullptr). The kernel
  /// itself never emits events — it only carries the pointer so domain
  /// models sharing this simulator find one sink without extra plumbing.
  /// The hot schedule→fire path is untouched either way.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  /// The attached flight recorder, or nullptr when tracing is off.
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One arena cell. Pending: generation odd, action set. Free: generation
  /// even, action empty, next_free links the free list.
  struct Slot {
    InlineAction action;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
  };

  /// One min-heap key. `generation` snapshots the slot's generation at
  /// scheduling time; a mismatch on pop marks a tombstone (cancelled).
  struct HeapEntry {
    Time when;
    std::uint64_t sequence;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Min-heap ordering: earliest time first, then lowest sequence.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.sequence < b.sequence;
  }

  /// Inserts a key, sifting up from the new leaf. Header-inline so it fuses
  /// into the templated schedule fast path.
  void heap_push(const HeapEntry& entry) {
    heap_.push_back(entry);
    std::size_t hole = heap_.size() - 1;
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 4;
      if (!earlier(entry, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = entry;
  }

  void heap_pop();

  /// Returns a free slot index, growing the slab only when the free list is
  /// empty.
  std::uint32_t acquire_slot() {
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      SMARTRED_ENSURE(slots_.size() < kNoSlot, "event arena exhausted");
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    ++slots_[slot].generation;  // odd: pending
    return slot;
  }

  /// Pushes the heap key for a just-filled slot and issues its handle.
  EventId commit_schedule(Time when, std::uint32_t slot) {
    const std::uint32_t generation = slots_[slot].generation;
    heap_push(HeapEntry{when, next_sequence_++, slot, generation});
    ++pending_;
    return EventId{slot, generation};
  }

  /// Marks the slot free (generation becomes even) and links it into the
  /// free list. Any outstanding EventId/heap key for it is now stale.
  void retire_slot(std::uint32_t slot);

  /// True when the heap's top key refers to a live (non-cancelled) event.
  [[nodiscard]] bool top_is_live() const {
    const HeapEntry& top = heap_.front();
    return slots_[top.slot].generation == top.generation;
  }
  /// Discards tombstoned keys at the top of the heap.
  void skip_cancelled();
  /// Pops and executes the next non-cancelled event, if any.
  /// Returns false when the queue is exhausted.
  bool execute_next();

  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace smartred::sim
