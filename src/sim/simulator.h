// Discrete-event simulation kernel.
//
// This is the repository's stand-in for the XDEVS simulator the paper uses
// in Section 4.1: a deterministic event queue over continuous simulated
// time. Events scheduled for the same timestamp fire in FIFO scheduling
// order (stable by sequence number), which makes entire simulation runs
// reproducible from their RNG seed alone.
//
// The kernel is deliberately small: schedule / schedule_batch / cancel /
// run. The domain models (DCA task server, volunteer-computing clients) are
// ordinary objects that hold a Simulator& and schedule callbacks on
// themselves; there is no component/port framework to fight.
//
// Internals — generation-tagged slot arena (zero-allocation steady state):
//
//  * Event actions live in a recycled slab of fixed-size slots
//    (std::vector<Slot>, grown once and reused forever via an intrusive
//    free list). An action is a 48-byte small-buffer InlineAction, so
//    neither the slot nor the callback it stores ever touches the heap on
//    the steady-state schedule→fire path.
//  * Ordering is an implicit kArity-ary min-heap of packed 16-byte keys in
//    a second recycled vector — no node allocations, no per-event hashing.
//    A key is (when_bits, sequence·2^24 + slot): simulated time is
//    non-negative, so the IEEE-754 bit pattern of `when` orders exactly
//    like the double and the whole comparison is two integer compares.
//    Halving the entry size (24 → 16 bytes) keeps a 100k-event backlog
//    inside the fast cache levels and fits a whole sibling group in one
//    cache line, so a sift-down pays one dependent miss per level — this
//    is what the kernel-churn numbers in BENCH_kernel.json price.
//  * The packed key budgets 24 bits for the slot index (16.7M concurrently
//    pending events per simulator) and 40 bits for the sequence number
//    (1.1e12 schedules over one simulator's lifetime); both are enforced
//    with always-on checks, so exhaustion fails loudly instead of
//    reordering ties.
//  * EventId is {slot, generation}. Each slot carries a generation counter
//    that is incremented when the slot is allocated (odd = pending) and
//    again when it is retired (even = free). cancel() is a bounds check
//    plus a generation compare: stale handles — already fired, already
//    cancelled, recycled slot (the ABA case), or never issued — simply
//    fail the compare. A cancelled event's heap key stays in the heap as a
//    tombstone and is discarded when it reaches the top: each slot also
//    records the packed key of its *current* occupancy (pending_meta), so
//    a popped key is live exactly when it still matches its slot's record.
//  * schedule_batch() stages a whole wave of events — slots acquired and
//    keys appended in one pass — and restores the heap invariant once:
//    per-key sift-ups for small waves (exactly equivalent to sequential
//    pushes) or a single bottom-up Floyd heapify when the wave rivals the
//    existing backlog. Pop order depends only on the key total order, so
//    both restore paths are observably identical to sequential schedule()
//    calls.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "sim/inline_action.h"

namespace smartred::obs {
class Recorder;
}

namespace smartred::sim {

/// Simulated time, in abstract "time units" (the paper's job durations are
/// uniform in [0.5, 1.5] of these units).
using Time = double;

/// Opaque handle identifying a scheduled event; usable with cancel().
/// A default-constructed EventId never identifies a live event.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;  ///< odd while pending; 0 = never issued
  friend bool operator==(EventId, EventId) = default;
};

/// A discrete-event simulator.
///
/// Not thread-safe: a simulation run is a single logical thread of control
/// (real time is irrelevant, so there is nothing to parallelize inside one
/// run; experiments parallelize across runs).
class Simulator {
 public:
  using Action = InlineAction;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events executed so far (for throughput reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (scheduled, not yet fired or
  /// cancelled).
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Schedules a callable to run `delay` time units from now.
  /// Requires delay >= 0. Returns a handle usable with cancel().
  ///
  /// Lambdas take this templated overload: the callable is placement-
  /// constructed directly into its arena slot (no intermediate Action
  /// object, no relocation), and the whole fast path inlines at the call
  /// site.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId schedule(Time delay, F&& fn) {
    SMARTRED_EXPECT(delay >= 0.0, "cannot schedule an event in the past");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules a pre-built Action (e.g. one handed through a queue).
  EventId schedule(Time delay, Action&& action);

  /// Schedules a callable at an absolute simulated time.
  /// Requires when >= now().
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId schedule_at(Time when, F&& fn) {
    SMARTRED_EXPECT(when >= now_, "cannot schedule an event before now()");
    const std::uint32_t slot = acquire_slot();
    slots_[slot].action.emplace(std::forward<F>(fn));
    const EventId id = stage_schedule(when, slot);
    sift_up(heap_.size() - 1);
    return id;
  }

  /// Schedules a pre-built Action at an absolute simulated time.
  EventId schedule_at(Time when, Action&& action);

  /// Schedules `delays.size()` events in one bulk operation: all slots are
  /// acquired and all heap keys appended first, then the heap invariant is
  /// restored once (per-key sift-up for small waves, one bottom-up Floyd
  /// heapify when the wave rivals the backlog). Observable behavior —
  /// handles issued, sequence order, pop order — is identical to calling
  /// schedule(delays[i], make(i)) in index order; only the insertion cost
  /// changes. `make(i)` must return the i-th event's callable; when `ids`
  /// is non-null it receives one handle per event. Requires every delay
  /// >= 0.
  template <typename MakeAction>
    requires std::is_invocable_v<MakeAction&, std::size_t>
  void schedule_batch(std::span<const Time> delays, MakeAction&& make,
                      EventId* ids = nullptr) {
    const std::size_t count = delays.size();
    if (count == 0) return;
    const std::size_t staged = heap_.size();
    heap_.reserve(staged + count);
    for (std::size_t i = 0; i < count; ++i) {
      SMARTRED_EXPECT(delays[i] >= 0.0,
                      "cannot schedule an event in the past");
      const std::uint32_t slot = acquire_slot();
      slots_[slot].action.emplace(make(i));
      const EventId id = stage_schedule(now_ + delays[i], slot);
      if (ids != nullptr) ids[i] = id;
    }
    restore_heap(staged);
  }

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, or
  /// unknown). Cancelling is O(1); the heap key is discarded lazily.
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final simulated time.
  Time run();

  /// Runs events with timestamp <= `until`, then sets now() to `until`
  /// (even if the queue emptied earlier). Returns now().
  Time run_until(Time until);

  /// Executes at most `max_events` events. Returns the number executed
  /// (less than max_events only if the queue emptied).
  std::uint64_t step(std::uint64_t max_events);

  /// Attaches a flight recorder (or detaches with nullptr). The kernel
  /// itself never emits events — it only carries the pointer so domain
  /// models sharing this simulator find one sink without extra plumbing.
  /// The hot schedule→fire path is untouched either way.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  /// The attached flight recorder, or nullptr when tracing is off.
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Key packing: meta = sequence << kSlotBits | slot.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static constexpr std::uint64_t kMaxSequence = 1ull << (64 - kSlotBits);
  /// A pending_meta value no live key ever carries (its sequence field
  /// would be out of range).
  static constexpr std::uint64_t kNoMeta = ~std::uint64_t{0};
  /// Heap fan-out. With 16-byte keys a 4-ary sibling group is exactly one
  /// cache line, so each sift-down level costs a single (dependent) miss.
  /// Measured on the churn bench at a 100k backlog: 4-ary beats both 8-ary
  /// (~+12%, two-line groups) and 16-ary (~2x, scan cost dominates).
  static constexpr std::size_t kArity = 4;

  /// One arena cell. Pending: generation odd, action set, pending_meta
  /// holding the packed key of the current occupancy. Free: generation
  /// even, action empty, pending_meta == kNoMeta, next_free linking the
  /// free list.
  struct Slot {
    InlineAction action;
    std::uint64_t pending_meta = kNoMeta;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
  };

  /// One packed min-heap key, 16 bytes. `when_bits` is the IEEE-754 bit
  /// pattern of the (non-negative, +0.0-canonicalized) timestamp, which
  /// orders identically to the double itself; `meta` is the sequence
  /// number in the high 40 bits (FIFO tie-break among equal timestamps)
  /// over the slot index in the low 24.
  struct HeapEntry {
    std::uint64_t when_bits;
    std::uint64_t meta;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(meta) & (kMaxSlots - 1u);
    }
    [[nodiscard]] Time when() const {
      return std::bit_cast<Time>(when_bits);
    }
  };
  static_assert(sizeof(HeapEntry) == 16, "heap keys must stay packed");

  /// Min-heap ordering: earliest time first, then lowest sequence. The
  /// sequence field sits above the slot field, so comparing `meta` whole
  /// compares sequences (which are unique).
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when_bits != b.when_bits) return a.when_bits < b.when_bits;
    return a.meta < b.meta;
  }

  /// Restores the heap invariant for the entry at `hole`, whose ancestors
  /// already satisfy it, by walking toward the root.
  void sift_up(std::size_t hole) {
    const HeapEntry entry = heap_[hole];
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kArity;
      if (!earlier(entry, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = entry;
  }

  void sift_down(std::size_t hole);
  void heap_pop();
  /// Restores the heap invariant after entries [staged, heap_.size()) were
  /// appended raw: per-entry sift-ups in append order (exactly equivalent
  /// to sequential pushes) for small batches, one bottom-up Floyd heapify
  /// when the batch rivals the existing backlog.
  void restore_heap(std::size_t staged);

  /// Returns a free slot index, growing the slab only when the free list is
  /// empty.
  std::uint32_t acquire_slot() {
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      SMARTRED_ENSURE(slots_.size() < kMaxSlots, "event arena exhausted");
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    ++slots_[slot].generation;  // odd: pending
    return slot;
  }

  /// Records the key for a just-filled slot, appends it to the heap
  /// WITHOUT restoring the heap invariant (the caller sifts or heapifies),
  /// and issues the slot's handle.
  EventId stage_schedule(Time when, std::uint32_t slot) {
    SMARTRED_ENSURE(next_sequence_ < kMaxSequence,
                    "event sequence space exhausted");
    // + 0.0 canonicalizes a -0.0 timestamp, whose sign bit would otherwise
    // wreck the bit-pattern ordering.
    const std::uint64_t when_bits = std::bit_cast<std::uint64_t>(when + 0.0);
    const std::uint64_t meta = (next_sequence_++ << kSlotBits) | slot;
    slots_[slot].pending_meta = meta;
    heap_.push_back(HeapEntry{when_bits, meta});
    ++pending_;
    return EventId{slot, slots_[slot].generation};
  }

  /// Marks the slot free (generation becomes even, key record cleared) and
  /// links it into the free list. Any outstanding EventId/heap key for it
  /// is now stale.
  void retire_slot(std::uint32_t slot);

  /// True when the heap's top key refers to a live (non-cancelled) event.
  [[nodiscard]] bool top_is_live() const {
    const HeapEntry& top = heap_.front();
    return slots_[top.slot()].pending_meta == top.meta;
  }
  /// Discards tombstoned keys at the top of the heap.
  void skip_cancelled();
  /// Pops and executes the next non-cancelled event, if any.
  /// Returns false when the queue is exhausted.
  bool execute_next();

  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace smartred::sim
