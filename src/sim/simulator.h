// Discrete-event simulation kernel.
//
// This is the repository's stand-in for the XDEVS simulator the paper uses
// in Section 4.1: a deterministic event queue over continuous simulated
// time. Events scheduled for the same timestamp fire in FIFO scheduling
// order (stable by sequence number), which makes entire simulation runs
// reproducible from their RNG seed alone.
//
// The kernel is deliberately small: schedule / cancel / run. The domain
// models (DCA task server, volunteer-computing clients) are ordinary objects
// that hold a Simulator& and schedule callbacks on themselves; there is no
// component/port framework to fight.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/expect.h"

namespace smartred::sim {

/// Simulated time, in abstract "time units" (the paper's job durations are
/// uniform in [0.5, 1.5] of these units).
using Time = double;

/// Opaque handle identifying a scheduled event; usable with cancel().
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// A discrete-event simulator.
///
/// Not thread-safe: a simulation run is a single logical thread of control
/// (real time is irrelevant, so there is nothing to parallelize inside one
/// run; experiments parallelize across runs).
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events executed so far (for throughput reporting).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (scheduled, not yet fired or
  /// cancelled).
  [[nodiscard]] std::size_t pending() const { return pending_ids_.size(); }

  /// Schedules `action` to run `delay` time units from now.
  /// Requires delay >= 0. Returns a handle usable with cancel().
  EventId schedule(Time delay, Action action);

  /// Schedules `action` at an absolute simulated time.
  /// Requires when >= now().
  EventId schedule_at(Time when, Action action);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired, already cancelled, or
  /// unknown). Cancelling is O(1); storage is reclaimed lazily.
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final simulated time.
  Time run();

  /// Runs events with timestamp <= `until`, then sets now() to `until`
  /// (even if the queue emptied earlier). Returns now().
  Time run_until(Time until);

  /// Executes at most `max_events` events. Returns the number executed
  /// (less than max_events only if the queue emptied).
  std::uint64_t step(std::uint64_t max_events);

 private:
  struct Entry {
    Time when;
    std::uint64_t sequence;  // tie-break: FIFO among equal timestamps
    Action action;

    // Min-heap ordering: earliest time first, then lowest sequence.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  /// Pops and executes the next non-cancelled event, if any.
  /// Returns false when the queue is exhausted.
  bool execute_next();
  /// Discards cancelled entries at the head of the queue.
  void skip_cancelled();

  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace smartred::sim
