#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace smartred::sim {

EventId Simulator::schedule(Time delay, Action&& action) {
  SMARTRED_EXPECT(delay >= 0.0, "cannot schedule an event in the past");
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, Action&& action) {
  SMARTRED_EXPECT(when >= now_, "cannot schedule an event before now()");
  SMARTRED_EXPECT(static_cast<bool>(action), "event action must be callable");
  const std::uint32_t slot = acquire_slot();
  slots_[slot].action = std::move(action);
  const EventId id = stage_schedule(when, slot);
  sift_up(heap_.size() - 1);
  return id;
}

bool Simulator::cancel(EventId id) {
  // Only events that are still pending can be cancelled; cancel-after-fire,
  // double-cancel, and forged/stale handles all fail the generation compare
  // (a pending slot's generation is odd and matches only the one handle
  // issued for the current occupancy). The heap cannot remove from the
  // middle, so the key is left behind as a tombstone: retiring the slot
  // clears its pending_meta record, and the orphaned key is discarded
  // lazily when it reaches the top.
  if (id.slot >= slots_.size()) return false;
  Slot& cell = slots_[id.slot];
  if (cell.generation != id.generation || (id.generation & 1u) == 0) {
    return false;
  }
  cell.action.reset();
  retire_slot(id.slot);
  --pending_;
  return true;
}

void Simulator::retire_slot(std::uint32_t slot) {
  Slot& cell = slots_[slot];
  ++cell.generation;  // even: free
  cell.pending_meta = kNoMeta;
  cell.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::sift_down(std::size_t hole) {
  const std::size_t size = heap_.size();
  const HeapEntry entry = heap_[hole];
  for (;;) {
    const std::size_t first = kArity * hole + 1;
    if (first >= size) break;
    std::size_t best = first;
    const std::size_t limit = std::min(first + kArity, size);
    for (std::size_t child = first + 1; child < limit; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = entry;
}

void Simulator::heap_pop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::restore_heap(std::size_t staged) {
  const std::size_t size = heap_.size();
  const std::size_t appended = size - staged;
  // Per-key sift-up costs O(appended · depth) in the worst case but is
  // nearly O(appended) in practice (a random key stays near the leaves);
  // Floyd heapify is a guaranteed O(size) rebuild. Prefer the rebuild only
  // once the wave is a sizeable fraction of the whole backlog.
  if (appended < size / 4 + 8) {
    for (std::size_t i = staged; i < size; ++i) sift_up(i);
    return;
  }
  for (std::size_t hole = (size - 2) / kArity + 1; hole-- > 0;) {
    sift_down(hole);
  }
}

bool Simulator::execute_next() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    heap_pop();
    const std::uint32_t slot = top.slot();
    if (slots_[slot].pending_meta != top.meta) continue;  // tombstone
    // Move the action out and retire the slot *before* invoking: the action
    // may schedule new events, which may recycle this very slot or grow the
    // slab (invalidating Slot references, never the local).
    Action action = std::move(slots_[slot].action);
    retire_slot(slot);
    --pending_;
    now_ = top.when();
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Simulator::skip_cancelled() {
  while (!heap_.empty() && !top_is_live()) heap_pop();
}

Time Simulator::run() {
  while (execute_next()) {
  }
  return now_;
}

Time Simulator::run_until(Time until) {
  SMARTRED_EXPECT(until >= now_, "run_until() target is in the past");
  while (true) {
    skip_cancelled();
    if (heap_.empty() || heap_.front().when() > until) break;
    execute_next();
  }
  now_ = until;
  return now_;
}

std::uint64_t Simulator::step(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && execute_next()) ++count;
  return count;
}

}  // namespace smartred::sim
