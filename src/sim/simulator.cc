#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace smartred::sim {

EventId Simulator::schedule(Time delay, Action&& action) {
  SMARTRED_EXPECT(delay >= 0.0, "cannot schedule an event in the past");
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, Action&& action) {
  SMARTRED_EXPECT(when >= now_, "cannot schedule an event before now()");
  SMARTRED_EXPECT(static_cast<bool>(action), "event action must be callable");
  const std::uint32_t slot = acquire_slot();
  slots_[slot].action = std::move(action);
  return commit_schedule(when, slot);
}

bool Simulator::cancel(EventId id) {
  // Only events that are still pending can be cancelled; cancel-after-fire,
  // double-cancel, and forged/stale handles all fail the generation compare
  // (a pending slot's generation is odd and matches only the one handle
  // issued for the current occupancy). The heap cannot remove from the
  // middle, so the key is left behind as a tombstone and discarded lazily
  // when it reaches the top.
  if (id.slot >= slots_.size()) return false;
  Slot& cell = slots_[id.slot];
  if (cell.generation != id.generation || (id.generation & 1u) == 0) {
    return false;
  }
  cell.action.reset();
  retire_slot(id.slot);
  --pending_;
  return true;
}

void Simulator::retire_slot(std::uint32_t slot) {
  Slot& cell = slots_[slot];
  ++cell.generation;  // even: free
  cell.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::heap_pop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (size == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= size) break;
    std::size_t best = first;
    const std::size_t limit = std::min(first + 4, size);
    for (std::size_t child = first + 1; child < limit; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = last;
}

bool Simulator::execute_next() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    heap_pop();
    if (slots_[top.slot].generation != top.generation) continue;  // tombstone
    // Move the action out and retire the slot *before* invoking: the action
    // may schedule new events, which may recycle this very slot or grow the
    // slab (invalidating Slot references, never the local).
    Action action = std::move(slots_[top.slot].action);
    retire_slot(top.slot);
    --pending_;
    now_ = top.when;
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Simulator::skip_cancelled() {
  while (!heap_.empty() && !top_is_live()) heap_pop();
}

Time Simulator::run() {
  while (execute_next()) {
  }
  return now_;
}

Time Simulator::run_until(Time until) {
  SMARTRED_EXPECT(until >= now_, "run_until() target is in the past");
  while (true) {
    skip_cancelled();
    if (heap_.empty() || heap_.front().when > until) break;
    execute_next();
  }
  now_ = until;
  return now_;
}

std::uint64_t Simulator::step(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && execute_next()) ++count;
  return count;
}

}  // namespace smartred::sim
