#include "sim/simulator.h"

#include <utility>

namespace smartred::sim {

EventId Simulator::schedule(Time delay, Action action) {
  SMARTRED_EXPECT(delay >= 0.0, "cannot schedule an event in the past");
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, Action action) {
  SMARTRED_EXPECT(when >= now_, "cannot schedule an event before now()");
  SMARTRED_EXPECT(action != nullptr, "event action must be callable");
  const std::uint64_t sequence = next_sequence_++;
  queue_.push(Entry{when, sequence, std::move(action)});
  pending_ids_.insert(sequence);
  return EventId{sequence};
}

bool Simulator::cancel(EventId id) {
  // Only events that are still pending can be cancelled; cancel-after-fire
  // and double-cancel report false. The heap cannot remove from the middle,
  // so the entry is marked and discarded lazily when it reaches the top.
  if (pending_ids_.erase(id.value) == 0) return false;
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::execute_next() {
  skip_cancelled();
  if (queue_.empty()) return false;
  // Copy the entry out before popping; the action may schedule new events.
  Entry entry = queue_.top();
  queue_.pop();
  pending_ids_.erase(entry.sequence);
  now_ = entry.when;
  ++executed_;
  entry.action();
  return true;
}

void Simulator::skip_cancelled() {
  while (!queue_.empty() &&
         cancelled_.find(queue_.top().sequence) != cancelled_.end()) {
    cancelled_.erase(queue_.top().sequence);
    queue_.pop();
  }
}

Time Simulator::run() {
  while (execute_next()) {
  }
  return now_;
}

Time Simulator::run_until(Time until) {
  SMARTRED_EXPECT(until >= now_, "run_until() target is in the past");
  while (true) {
    skip_cancelled();
    if (queue_.empty() || queue_.top().when > until) break;
    execute_next();
  }
  now_ = until;
  return now_;
}

std::uint64_t Simulator::step(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && execute_next()) ++count;
  return count;
}

}  // namespace smartred::sim
