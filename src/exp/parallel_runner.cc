#include "exp/parallel_runner.h"

#include <cinttypes>
#include <cstdio>

namespace smartred::exp {

namespace {

/// Minimum wall-clock gap between progress reprints.
constexpr std::int64_t kPrintIntervalMs = 250;

/// Process-wide cooperative stop flag. Relaxed atomic ops only, so
/// request_stop() stays async-signal-safe.
std::atomic<bool> g_stop{false};

}  // namespace

void request_stop() noexcept { g_stop.store(true, std::memory_order_relaxed); }

bool stop_requested() noexcept {
  return g_stop.load(std::memory_order_relaxed);
}

void reset_stop() noexcept { g_stop.store(false, std::memory_order_relaxed); }

ProgressMeter::ProgressMeter(bool enabled, std::string_view label,
                             std::uint64_t total, std::uint64_t already_done)
    : enabled_(enabled),
      label_(label),
      total_(total),
      already_done_(already_done),
      done_(already_done) {
  if (enabled_) start_ = std::chrono::steady_clock::now();
}

void ProgressMeter::advance() {
  if (!enabled_) return;
  const std::uint64_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::int64_t elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::int64_t last = last_print_ms_.load(std::memory_order_relaxed);
  if (elapsed_ms - last < kPrintIntervalMs) return;
  // Claim this reprint window; losers simply skip (another worker is
  // already printing a fresher state).
  if (!last_print_ms_.compare_exchange_strong(last, elapsed_ms,
                                              std::memory_order_relaxed)) {
    return;
  }
  print(done, /*final_line=*/false, /*interrupted=*/false);
}

void ProgressMeter::finish(bool interrupted) {
  if (!enabled_) return;
  print(done_.load(std::memory_order_relaxed), /*final_line=*/true,
        interrupted);
}

void ProgressMeter::print(std::uint64_t done, bool final_line,
                          bool interrupted) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // Throughput/ETA cover this session's work only — a resumed run starts
  // its count at already_done_, which took no time in this process.
  const std::uint64_t done_here = done - already_done_;
  const double rate =
      elapsed > 0.0 ? static_cast<double>(done_here) / elapsed : 0.0;
  const double eta =
      rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
  // One fprintf call so concurrent reprints never interleave mid-line; the
  // \r + trailing spaces overwrite any longer previous line.
  std::fprintf(stderr,
               "\r%s: %" PRIu64 "/%" PRIu64 " reps  %.1f rep/s  ETA %.1fs%s   %s",
               label_.c_str(), done, total_, rate, eta,
               interrupted ? "  [interrupted]" : "",
               final_line ? "\n" : "");
  if (!final_line) std::fflush(stderr);
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

std::uint64_t partition_size(std::uint64_t total, std::uint64_t parts,
                             std::uint64_t index) {
  SMARTRED_EXPECT(parts > 0, "partition needs at least one part");
  SMARTRED_EXPECT(index < parts, "partition index out of range");
  return total / parts + (index < total % parts ? 1 : 0);
}

std::uint64_t partition_offset(std::uint64_t total, std::uint64_t parts,
                               std::uint64_t index) {
  SMARTRED_EXPECT(parts > 0, "partition needs at least one part");
  SMARTRED_EXPECT(index < parts, "partition index out of range");
  const std::uint64_t base = total / parts;
  const std::uint64_t extra = total % parts;
  return index * base + std::min(index, extra);
}

}  // namespace smartred::exp
