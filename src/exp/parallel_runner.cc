#include "exp/parallel_runner.h"

namespace smartred::exp {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

std::uint64_t partition_size(std::uint64_t total, std::uint64_t parts,
                             std::uint64_t index) {
  SMARTRED_EXPECT(parts > 0, "partition needs at least one part");
  SMARTRED_EXPECT(index < parts, "partition index out of range");
  return total / parts + (index < total % parts ? 1 : 0);
}

std::uint64_t partition_offset(std::uint64_t total, std::uint64_t parts,
                               std::uint64_t index) {
  SMARTRED_EXPECT(parts > 0, "partition needs at least one part");
  SMARTRED_EXPECT(index < parts, "partition index out of range");
  const std::uint64_t base = total / parts;
  const std::uint64_t extra = total % parts;
  return index * base + std::min(index, extra);
}

}  // namespace smartred::exp
