// Deterministic parallel experiment engine.
//
// Every figure and ablation is an average over many Monte-Carlo
// replications. ParallelRunner fans N replications out across a pool of
// worker threads; each replication gets an independent seed derived from
// one master seed by a counter-based SplitMix64 split (rng::derive_seed),
// runs on its own Simulator (or Monte-Carlo driver), and deposits its
// result into a slot indexed by replication number. Reduction then walks
// the slots in replication order on the calling thread — so the merged
// aggregate is bit-identical whether the replications ran on 1 thread or
// 16, and identical to a serial loop over the same seeds.
//
// Determinism contract: the replication function must depend only on its
// (index, seed) arguments — no shared mutable state, no wall clock, no
// global RNG. Everything in src/ satisfies this by construction (all
// randomness flows through rng::Stream objects seeded explicitly).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "common/rng.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace smartred::ckpt {
// Typed checkpoint handle defined in ckpt/sweep.h. exp/ stays below ckpt/
// in the layering: the runner only carries the pointer; all checkpoint
// logic lives in ckpt::run_resumable(), which drives run_subset().
struct PointCheckpoint;
}  // namespace smartred::ckpt

namespace smartred::exp {

/// Requests a cooperative stop of all in-flight runs: workers finish the
/// replication they are on and stop claiming new ones. Async-signal-safe
/// (one relaxed atomic store) — designed to be called from SIGINT/SIGTERM
/// handlers.
void request_stop() noexcept;

/// Whether a cooperative stop has been requested.
[[nodiscard]] bool stop_requested() noexcept;

/// Clears the stop flag (tests; accepting a new batch after a handled
/// stop).
void reset_stop() noexcept;

/// Thrown when a run was cut short by request_stop(). The run's partial
/// merge is deliberately NOT returned — a partial aggregate must never be
/// mistaken for a complete one. `checkpointed()` says whether the partial
/// state was saved for --resume before throwing.
class StoppedError : public std::runtime_error {
 public:
  StoppedError(const std::string& what, std::uint64_t completed,
               std::uint64_t total, bool checkpointed)
      : std::runtime_error(what),
        completed_(completed),
        total_(total),
        checkpointed_(checkpointed) {}

  /// Replications finished before the stop took effect.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] bool checkpointed() const { return checkpointed_; }

 private:
  std::uint64_t completed_;
  std::uint64_t total_;
  bool checkpointed_;
};

/// How a batch of replications is executed.
struct RunnerConfig {
  /// Number of independent replications to run.
  std::uint64_t replications = 1;
  /// Worker threads; 0 means one per hardware thread.
  unsigned threads = 0;
  /// Master seed; replication i runs with rng::derive_seed(master_seed, i).
  std::uint64_t master_seed = 1;
  /// Optional trace collector. When set, run() sizes it to one ring per
  /// replication before any worker starts; the replication function picks
  /// up its private ring with `trace->recorder(i)`. Per-replication rings
  /// need no locks, and merging follows replication order — so traces obey
  /// the same any-thread-count determinism contract as the results.
  obs::TraceCollector* trace = nullptr;
  /// Optional time-series collector, sized exactly like `trace`: one
  /// private recorder per replication (`timeseries->recorder(i)`), merged
  /// later in replication order. Same any-thread-count determinism.
  obs::TimeSeriesCollector* timeseries = nullptr;
  /// Optional phase profiler: kSetup covers collector sizing, kRun the
  /// worker region, kMerge the run_merged() fold. Wall-clock timings for
  /// humans only — they never enter deterministic outputs.
  obs::PhaseProfiler* profile = nullptr;
  /// When true, run() keeps a throttled one-line progress display
  /// (completed replications, throughput, ETA) on stderr. Wall-clock,
  /// display only — never affects results or determinism.
  bool progress = false;
  /// Prefix for the progress line (typically the experiment/point name).
  std::string progress_label = "run";
  /// Optional crash-safe checkpoint handle (ckpt/sweep.h), consumed by
  /// ckpt::run_resumable(). The runner itself never dereferences it;
  /// checkpoint timing is wall-clock-dependent, so keeping the logic out
  /// of run() preserves the determinism contract of everything run()
  /// produces.
  ckpt::PointCheckpoint* checkpoint = nullptr;
};

/// Live stderr progress line for a batch of replications. Thread-safe:
/// workers call advance() concurrently; reprints are throttled (~4 Hz) and
/// claimed by one thread at a time. Disabled instances cost one branch.
class ProgressMeter {
 public:
  /// `already_done` seeds the completed count (resumed runs report true
  /// sweep position, not just this session's work); throughput and ETA are
  /// computed from this session's completions only.
  ProgressMeter(bool enabled, std::string_view label, std::uint64_t total,
                std::uint64_t already_done = 0);

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Marks one replication finished and refreshes the line if the
  /// throttle window has elapsed.
  void advance();
  /// Prints the final state and terminates the line; an interrupted batch
  /// is labeled as such so a partial count is never read as completion.
  /// Idempotent no-op when disabled.
  void finish(bool interrupted = false);

 private:
  void print(std::uint64_t done, bool final_line, bool interrupted);

  bool enabled_;
  std::string label_;
  std::uint64_t total_;
  std::uint64_t already_done_;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<std::uint64_t> done_{0};
  /// Milliseconds-since-start of the last reprint; advance() claims the
  /// next window with a compare-exchange so only one worker prints.
  std::atomic<std::int64_t> last_print_ms_{-1};
};

/// Resolves a requested thread count: 0 -> hardware concurrency (at least
/// 1); anything else is returned unchanged.
[[nodiscard]] unsigned resolve_threads(unsigned requested);

/// Size of part `index` when `total` work items are split as evenly as
/// possible across `parts` (the first total % parts parts get one extra).
/// Requires parts > 0 and index < parts.
[[nodiscard]] std::uint64_t partition_size(std::uint64_t total,
                                           std::uint64_t parts,
                                           std::uint64_t index);

/// First work item of part `index` under the partition_size() split.
[[nodiscard]] std::uint64_t partition_offset(std::uint64_t total,
                                             std::uint64_t parts,
                                             std::uint64_t index);

/// What a run_subset() call accomplished.
struct SubsetOutcome {
  /// Replications completed by this call (not counting already_done).
  std::uint64_t completed = 0;
  /// True when a cooperative stop cut the batch short of the full
  /// replication count — the caller must not report its merge as complete.
  bool stopped = false;
};

/// Runs experiment replications across a worker-thread pool.
class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerConfig config) : config_(config) {
    SMARTRED_EXPECT(config.replications > 0,
                    "a run needs at least one replication");
  }

  [[nodiscard]] const RunnerConfig& config() const { return config_; }

  /// Runs `fn(replication_index, replication_seed)` for exactly the
  /// replication indices in `todo` (any subset of [0, replications)),
  /// delivering each result to `on_result(index, std::move(result))` under
  /// a sink mutex — on_result bodies never race, so checkpoint saves and
  /// result deposits need no locking of their own. Delivery is in
  /// completion order; deterministic reduction is the caller's job (fold by
  /// index, as run() and ckpt::run_resumable() do).
  ///
  /// `already_done` is how many replications a previous session finished
  /// (resume); it only offsets the progress display and the stop
  /// accounting. Collectors are prepared for the FULL replication count so
  /// per-replication recorder indices stay stable across sessions.
  ///
  /// Honors request_stop(): workers finish their current replication and
  /// claim no more. The first exception thrown by any replication is
  /// rethrown after all workers stop.
  template <typename Fn, typename OnResult>
  SubsetOutcome run_subset(const std::vector<std::uint64_t>& todo,
                           std::uint64_t already_done, Fn&& fn,
                           OnResult&& on_result) {
    const std::uint64_t n = config_.replications;
    SMARTRED_EXPECT(already_done + todo.size() == n,
                    "todo plus already-done must cover every replication");
    {
      const obs::ScopedPhase setup(config_.profile, obs::Phase::kSetup);
      if (config_.trace != nullptr) config_.trace->prepare(n);
      if (config_.timeseries != nullptr) config_.timeseries->prepare(n);
    }
    const unsigned workers = static_cast<unsigned>(std::min<std::uint64_t>(
        resolve_threads(config_.threads), std::max<std::uint64_t>(
                                              todo.size(), 1)));

    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex sink_mutex;
    ProgressMeter progress(config_.progress, config_.progress_label, n,
                           already_done);

    auto worker = [&] {
      while (!failed.load(std::memory_order_relaxed) && !stop_requested()) {
        const std::uint64_t slot = next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= todo.size()) return;
        const std::uint64_t i = todo[static_cast<std::size_t>(slot)];
        try {
          auto result = fn(i, rng::derive_seed(config_.master_seed, i));
          const std::lock_guard<std::mutex> lock(sink_mutex);
          on_result(i, std::move(result));
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        progress.advance();
      }
    };

    SubsetOutcome outcome;
    {
      const obs::ScopedPhase running(config_.profile, obs::Phase::kRun);
      if (workers <= 1) {
        worker();
      } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
        for (std::thread& thread : pool) thread.join();
      }
      outcome.completed = completed.load(std::memory_order_relaxed);
      outcome.stopped =
          stop_requested() && already_done + outcome.completed < n;
      progress.finish(outcome.stopped);
    }
    if (error) std::rethrow_exception(error);
    return outcome;
  }

  /// Runs `fn(replication_index, replication_seed)` for every replication
  /// and returns the results ordered by replication index (independent of
  /// which worker computed which). Workers claim indices from an atomic
  /// counter, so stragglers never idle the pool. The first exception thrown
  /// by any replication is rethrown here after all workers have stopped.
  /// Throws StoppedError when request_stop() cut the batch short — partial
  /// results are never returned as if complete.
  template <typename Fn>
  [[nodiscard]] auto run(Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::uint64_t, std::uint64_t>> {
    using Result = std::invoke_result_t<Fn&, std::uint64_t, std::uint64_t>;
    static_assert(std::is_default_constructible_v<Result>,
                  "replication results must be default-constructible slots");
    const std::uint64_t n = config_.replications;
    std::vector<Result> results(n);
    std::vector<std::uint64_t> todo(n);
    std::iota(todo.begin(), todo.end(), std::uint64_t{0});
    const SubsetOutcome outcome =
        run_subset(todo, 0, std::forward<Fn>(fn),
                   [&results](std::uint64_t i, Result&& result) {
                     results[static_cast<std::size_t>(i)] = std::move(result);
                   });
    if (outcome.stopped) {
      throw StoppedError("run '" + config_.progress_label + "' stopped after " +
                             std::to_string(outcome.completed) + " of " +
                             std::to_string(n) + " replications",
                         outcome.completed, n, /*checkpointed=*/false);
    }
    return results;
  }

  /// Runs all replications and folds them left-to-right in replication
  /// order with `merge(accumulator, result)` — a deterministic reduction:
  /// the fold order is fixed by index, never by completion order. The
  /// first replication's result seeds the accumulator.
  template <typename Fn, typename Merge>
  [[nodiscard]] auto run_merged(Fn&& fn, Merge&& merge)
      -> std::invoke_result_t<Fn&, std::uint64_t, std::uint64_t> {
    auto results = run(std::forward<Fn>(fn));
    const obs::ScopedPhase merging(config_.profile, obs::Phase::kMerge);
    auto merged = std::move(results.front());
    for (std::size_t i = 1; i < results.size(); ++i) {
      merge(merged, results[i]);
    }
    return merged;
  }

  /// run_merged() for result types with a `merge(const Result&)` member
  /// (dca::RunMetrics, redundancy::MonteCarloResult).
  template <typename Fn>
  [[nodiscard]] auto run_merged(Fn&& fn)
      -> std::invoke_result_t<Fn&, std::uint64_t, std::uint64_t> {
    return run_merged(std::forward<Fn>(fn),
                      [](auto& into, const auto& from) { into.merge(from); });
  }

 private:
  RunnerConfig config_;
};

}  // namespace smartred::exp
