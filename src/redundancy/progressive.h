// Progressive k-vote redundancy, paper §3.2.
//
// Derived from self-configuring optimistic programming (Bondavalli et al.):
// dispatch only the consensus quorum (k+1)/2 first; whenever the returned
// results fall short of a consensus, top up with exactly the number of jobs
// that could — if they all agreed with the current leader — complete it.
// Reliability equals traditional redundancy's (Equation (4)); expected cost
// is Equation (3), always <= k, reached in at most (k−1)/2 top-up waves
// under the binary threat model.
#pragma once

#include "redundancy/strategy.h"

namespace smartred::redundancy {

class ProgressiveRedundancy final : public RedundancyStrategy {
 public:
  /// Requires k odd and >= 1.
  explicit ProgressiveRedundancy(int k);

  Decision decide(std::span<const Vote> votes) override;

  /// The consensus quorum (k+1)/2.
  [[nodiscard]] int quorum() const { return (k_ + 1) / 2; }

 private:
  int k_;
};

class ProgressiveFactory final : public StrategyFactory {
 public:
  explicit ProgressiveFactory(int k);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Pure function of the vote tally: one instance serves any task mix.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int k() const { return k_; }

 private:
  int k_;
};

}  // namespace smartred::redundancy
