#include "redundancy/coded.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"

namespace smartred::redundancy {
namespace {

// GF(2^8) with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D) and generator 0x02, via compile-time log/exp tables. The exp
// table is doubled so products of two logs (max 254 + 254) index it
// without a modulo, and div() can add the inverse offset (max 254 + 255).
struct Gf256Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint16_t, 256> log{};
};

constexpr Gf256Tables build_gf256() {
  Gf256Tables tables{};
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    tables.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    tables.log[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if ((x & 0x100U) != 0) x ^= 0x11DU;
  }
  for (int i = 255; i < 512; ++i) {
    tables.exp[static_cast<std::size_t>(i)] =
        tables.exp[static_cast<std::size_t>(i - 255)];
  }
  return tables;
}

constexpr Gf256Tables kGf = build_gf256();

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kGf.exp[static_cast<std::size_t>(kGf.log[a] + kGf.log[b])];
}

constexpr std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  // b != 0 always holds here: divisors are XORs of distinct x-coordinates.
  if (a == 0) return 0;
  return kGf.exp[static_cast<std::size_t>(kGf.log[a] + 255 - kGf.log[b])];
}

/// Each byte of `word` scaled by the GF(2^8) scalar `c`.
constexpr std::uint32_t gf_scale_word(std::uint32_t word, std::uint8_t c) {
  std::uint32_t out = 0;
  for (int byte = 0; byte < 4; ++byte) {
    const auto b = static_cast<std::uint8_t>(word >> (8 * byte));
    out |= static_cast<std::uint32_t>(gf_mul(b, c)) << (8 * byte);
  }
  return out;
}

/// Lagrange-evaluates the degree-(count-1) polynomial through
/// (xs[j], words[j]) at `x`, byte-wise. The scalar basis coefficient
/// c_j = prod_{m != j} (x + x_m) / (x_j + x_m) is shared by all four bytes
/// of a word (addition in GF(2^8) is XOR).
std::uint32_t lagrange_at(std::span<const std::uint8_t> xs,
                          std::span<const std::uint32_t> words,
                          std::uint8_t x) {
  const std::size_t count = xs.size();
  for (std::size_t j = 0; j < count; ++j) {
    if (xs[j] == x) return words[j];  // exact node: no interpolation needed
  }
  std::uint32_t out = 0;
  for (std::size_t j = 0; j < count; ++j) {
    std::uint8_t numerator = 1;
    std::uint8_t denominator = 1;
    for (std::size_t m = 0; m < count; ++m) {
      if (m == j) continue;
      numerator = gf_mul(numerator, static_cast<std::uint8_t>(x ^ xs[m]));
      denominator =
          gf_mul(denominator, static_cast<std::uint8_t>(xs[j] ^ xs[m]));
    }
    out ^= gf_scale_word(words[j], gf_div(numerator, denominator));
  }
  return out;
}

}  // namespace

Codec::Codec(int n, int k) : n_(n), k_(k) {
  SMARTRED_EXPECT(n >= 1 && n <= kMaxCodedPieces,
                  "codec needs 1 <= n <= kMaxCodedPieces");
  SMARTRED_EXPECT(k >= 1 && k <= n, "codec needs 1 <= k <= n");
}

ResultValue Codec::piece(ResultValue value, int index) const {
  SMARTRED_EXPECT(index >= 0 && index < n_, "piece index out of range");
  const auto word = static_cast<std::uint32_t>(value);
  if (index < k_) {
    return static_cast<ResultValue>(
        coded_mix32(word, static_cast<std::uint32_t>(index)));
  }
  std::array<std::uint8_t, kMaxCodedPieces> xs;
  std::array<std::uint32_t, kMaxCodedPieces> words;
  for (int i = 0; i < k_; ++i) {
    xs[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    words[static_cast<std::size_t>(i)] =
        coded_mix32(word, static_cast<std::uint32_t>(i));
  }
  const auto count = static_cast<std::size_t>(k_);
  return static_cast<ResultValue>(
      lagrange_at(std::span(xs.data(), count), std::span(words.data(), count),
                  static_cast<std::uint8_t>(index)));
}

void Codec::encode(ResultValue value, std::span<ResultValue> out) const {
  SMARTRED_EXPECT(out.size() == static_cast<std::size_t>(n_),
                  "encode output span must hold n pieces");
  for (int i = 0; i < n_; ++i) {
    out[static_cast<std::size_t>(i)] = piece(value, i);
  }
}

Codec::Decoded Codec::decode(std::span<const Share> shares) const {
  SMARTRED_EXPECT(shares.size() == static_cast<std::size_t>(k_),
                  "decode needs exactly k shares");
  std::array<std::uint8_t, kMaxCodedPieces> xs;
  std::array<std::uint32_t, kMaxCodedPieces> words;
  for (std::size_t j = 0; j < shares.size(); ++j) {
    const Share& share = shares[j];
    SMARTRED_EXPECT(share.index >= 0 && share.index < n_,
                    "share index out of range");
    for (std::size_t m = 0; m < j; ++m) {
      SMARTRED_EXPECT(shares[m].index != share.index,
                      "decode shares must have distinct indices");
    }
    xs[j] = static_cast<std::uint8_t>(share.index);
    words[j] = static_cast<std::uint32_t>(share.value);
  }
  const std::span<const std::uint8_t> xspan(xs.data(), shares.size());
  const std::span<const std::uint32_t> wspan(words.data(), shares.size());

  Decoded decoded;
  for (int i = 0; i < n_; ++i) {
    decoded.codeword[static_cast<std::size_t>(i)] = static_cast<ResultValue>(
        lagrange_at(xspan, wspan, static_cast<std::uint8_t>(i)));
  }
  const auto value = static_cast<std::uint32_t>(decoded.codeword[0]);
  decoded.value = static_cast<ResultValue>(value);
  decoded.self_consistent = true;
  for (int i = 1; i < k_; ++i) {
    if (static_cast<std::uint32_t>(decoded.codeword[static_cast<std::size_t>(
            i)]) != coded_mix32(value, static_cast<std::uint32_t>(i))) {
      decoded.self_consistent = false;
      break;
    }
  }
  return decoded;
}

CodedConfig CodedConfig::normalized() const {
  CodedConfig out = *this;
  if (out.v < 0) out.v = std::min(1, out.n - out.k);
  SMARTRED_EXPECT(out.n >= 1 && out.n <= kMaxCodedPieces,
                  "coded redundancy needs 1 <= n <= kMaxCodedPieces");
  SMARTRED_EXPECT(out.k >= 1 && out.k <= out.n,
                  "coded redundancy needs 1 <= k <= n");
  SMARTRED_EXPECT(out.g >= 1 && out.n % out.g == 0,
                  "coded redundancy needs a wave size g dividing n");
  SMARTRED_EXPECT(out.d >= 1, "coded redundancy needs margin d >= 1");
  SMARTRED_EXPECT(out.k + out.v <= out.n,
                  "coded redundancy needs verify overhead v with k+v <= n");
  return out;
}

int coded_min_jobs(const CodedConfig& config) {
  const CodedConfig c = config.normalized();
  // Round-robin waves of g (g | n): after (d-1) full cycles every piece
  // has d-1 votes; the next ceil((k+v)/g) waves push k+v pieces to d.
  const int need = c.k + c.v;
  return (c.d - 1) * c.n + c.g * ((need + c.g - 1) / c.g);
}

double coded_first_pass_reliability(const CodedConfig& config, double r) {
  double out = 1.0;
  const int jobs = coded_min_jobs(config);
  for (int i = 0; i < jobs; ++i) out *= r;
  return out;
}

CodedRedundancy::CodedRedundancy(const CodedConfig& config)
    : config_(config.normalized()), codec_(config_.n, config_.k) {}

Decision CodedRedundancy::decide(std::span<const Vote> votes) {
  const int n = config_.n;
  const int k = config_.k;
  const int need = k + config_.v;
  if (votes.empty()) return Decision::dispatch(config_.g);

  // Fold the wave into per-piece tallies in chunks: histogram the chunk by
  // piece, scatter values into piece-contiguous runs (stable, so within-
  // piece first-seen order is arrival order), then bulk-fold each run
  // through the tally's dense counting path instead of a per-vote add().
  std::array<VoteTally, kMaxCodedPieces> tallies;
  {
    constexpr std::size_t kChunk = 1024;
    ResultValue scattered[kChunk];
    std::array<int, kMaxCodedPieces + 1> offsets{};
    const std::size_t count = votes.size();
    for (std::size_t base = 0; base < count; base += kChunk) {
      const std::size_t chunk = std::min(kChunk, count - base);
      offsets.fill(0);
      for (std::size_t i = 0; i < chunk; ++i) {
        const Vote& vote = votes[base + i];
        SMARTRED_EXPECT(vote.piece >= 0 && vote.piece < n,
                        "coded vote carries an out-of-range piece index");
        ++offsets[static_cast<std::size_t>(vote.piece) + 1];
      }
      for (int p = 0; p < n; ++p) {
        offsets[static_cast<std::size_t>(p) + 1] +=
            offsets[static_cast<std::size_t>(p)];
      }
      std::array<int, kMaxCodedPieces> cursor{};
      for (std::size_t i = 0; i < chunk; ++i) {
        const Vote& vote = votes[base + i];
        const auto piece = static_cast<std::size_t>(vote.piece);
        scattered[static_cast<std::size_t>(offsets[piece]) +
                  static_cast<std::size_t>(cursor[piece]++)] = vote.value;
      }
      for (int p = 0; p < n; ++p) {
        const auto piece = static_cast<std::size_t>(p);
        const int run = cursor[piece];
        if (run > 0) {
          tallies[piece].fold_values(std::span<const ResultValue>(
              scattered + offsets[piece], static_cast<std::size_t>(run)));
        }
      }
    }
  }

  // Settled pieces (margin >= d), ascending by index. d >= 1 makes each
  // settled leader unique, so the decision is arrival-order independent.
  std::array<int, kMaxCodedPieces> settled;
  int settled_count = 0;
  for (int p = 0; p < n; ++p) {
    const VoteTally& tally = tallies[static_cast<std::size_t>(p)];
    if (tally.total() > 0 && tally.margin() >= config_.d) {
      settled[static_cast<std::size_t>(settled_count++)] = p;
    }
  }
  if (settled_count < need) return Decision::dispatch(config_.g);

  // Deterministic exclusion search: decode from the first k non-excluded
  // settled pieces; on self-check or agreement failure, exclude the used
  // share with the smallest margin (largest index on ties) and retry.
  // Each round excludes one piece, so the loop is bounded by n - k + 1.
  std::array<bool, kMaxCodedPieces> excluded{};
  std::array<Codec::Share, kMaxCodedPieces> shares;
  int rejects = 0;
  int available = settled_count;
  while (available >= k) {
    int taken = 0;
    for (int s = 0; s < settled_count && taken < k; ++s) {
      const int p = settled[static_cast<std::size_t>(s)];
      if (excluded[static_cast<std::size_t>(p)]) continue;
      shares[static_cast<std::size_t>(taken++)] = Codec::Share{
          p, tallies[static_cast<std::size_t>(p)].leader()};
    }
    const Codec::Decoded decoded =
        codec_.decode(std::span(shares.data(), static_cast<std::size_t>(k)));
    if (decoded.self_consistent) {
      int agree = 0;
      for (int s = 0; s < settled_count; ++s) {
        const int p = settled[static_cast<std::size_t>(s)];
        if (tallies[static_cast<std::size_t>(p)].leader() ==
            decoded.codeword[static_cast<std::size_t>(p)]) {
          ++agree;
        }
      }
      if (agree >= need) {
        Decision out =
            Decision::accept(decoded.value, Decision::Reason::kDecodeVerified);
        out.decode_rejects = rejects;
        return out;
      }
    }
    ++rejects;
    int worst = -1;
    int worst_margin = std::numeric_limits<int>::max();
    for (int t = 0; t < k; ++t) {
      const int p = shares[static_cast<std::size_t>(t)].index;
      const int margin = tallies[static_cast<std::size_t>(p)].margin();
      if (margin < worst_margin || (margin == worst_margin && p > worst)) {
        worst = p;
        worst_margin = margin;
      }
    }
    excluded[static_cast<std::size_t>(worst)] = true;
    --available;
  }
  Decision out = Decision::dispatch(config_.g);
  out.decode_rejects = rejects;
  return out;
}

int CodedFactory::Encoder::piece_of(int ordinal) const {
  SMARTRED_EXPECT(ordinal >= 0, "job ordinal cannot be negative");
  return ordinal % codec_->n();
}

ResultValue CodedFactory::Encoder::job_value(ResultValue task_value,
                                             int ordinal) const {
  SMARTRED_EXPECT(ordinal >= 0, "job ordinal cannot be negative");
  return codec_->piece(task_value, ordinal % codec_->n());
}

CodedFactory::CodedFactory(const CodedConfig& config)
    : config_(config.normalized()),
      codec_(config_.n, config_.k),
      encoder_(codec_) {}

std::unique_ptr<RedundancyStrategy> CodedFactory::make() const {
  return std::make_unique<CodedRedundancy>(config_);
}

std::string CodedFactory::name() const {
  return "coded(n=" + std::to_string(config_.n) +
         ",k=" + std::to_string(config_.k) + ",g=" + std::to_string(config_.g) +
         ",d=" + std::to_string(config_.d) + ",v=" + std::to_string(config_.v) +
         ")";
}

}  // namespace smartred::redundancy
