// Traditional k-vote redundancy (k-modular redundancy), paper §3.1.
//
// All k jobs are dispatched at once; when every job has reported, the
// majority value wins. Cost factor is exactly k (Equation (1)); reliability
// is Equation (2). This is the state of the practice in BOINC and Hadoop and
// the baseline both smarter techniques are measured against.
#pragma once

#include "redundancy/strategy.h"

namespace smartred::redundancy {

class TraditionalRedundancy final : public RedundancyStrategy {
 public:
  /// Requires k odd and >= 1 (k = 1 means no redundancy).
  explicit TraditionalRedundancy(int k);

  Decision decide(std::span<const Vote> votes) override;

 private:
  int k_;
};

class TraditionalFactory final : public StrategyFactory {
 public:
  explicit TraditionalFactory(int k);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Pure function of the vote tally: one instance serves any task mix.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int k() const { return k_; }

 private:
  int k_;
};

}  // namespace smartred::redundancy
