// String-keyed construction of redundancy strategies.
//
// Every bench and tool used to hand-roll its factory wiring (pick the
// class, parse its own flags, thread shared books by hand). The registry
// replaces that with one tiny spec grammar:
//
//   technique[:key=value[,key=value...]]
//
// e.g. "iterative:d=4", "traditional:k=5", "selftuning:R=0.999",
// "adaptive:quorum=3,trust=10". Unknown techniques and unknown or missing
// keys raise SpecError with a message listing what *is* valid, so a typo'd
// --strategy flag fails loudly instead of silently running the wrong
// experiment.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/spec.h"
#include "redundancy/strategy.h"

namespace smartred::redundancy {

/// A malformed or unknown strategy spec. The message names the offending
/// part and lists the valid alternatives. (Shared with the assignment
/// registry — one grammar, one error type.)
using SpecError = spec::SpecError;

class Registry {
 public:
  /// Builds a factory from a spec string. Throws SpecError on unknown
  /// technique, unknown/duplicate/missing keys, or unparsable values.
  [[nodiscard]] static std::shared_ptr<StrategyFactory> make(
      std::string_view spec);

  /// The technique names make() accepts, with their aliases and keys —
  /// one "name[,alias]: key=default..." line per technique, for help text.
  [[nodiscard]] static std::vector<std::string> describe();
};

/// Convenience wrapper over Registry::make for call sites that want a
/// free function.
[[nodiscard]] inline std::shared_ptr<StrategyFactory> make_strategy(
    std::string_view spec) {
  return Registry::make(spec);
}

}  // namespace smartred::redundancy
