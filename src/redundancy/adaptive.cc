#include "redundancy/adaptive.h"

#include <sstream>

namespace smartred::redundancy {

TrustBook::TrustBook(int threshold) : threshold_(threshold) {
  SMARTRED_EXPECT(threshold >= 1, "trust threshold must be >= 1");
}

void TrustBook::record_validated(NodeId node, bool valid) {
  if (valid) {
    ++streaks_[node];
  } else {
    streaks_[node] = 0;
  }
}

bool TrustBook::trusted(NodeId node) const {
  return consecutive_valid(node) >= threshold_;
}

int TrustBook::consecutive_valid(NodeId node) const {
  const auto found = streaks_.find(node);
  return found == streaks_.end() ? 0 : found->second;
}

void TrustBook::forget(NodeId node) { streaks_.erase(node); }

AdaptiveReplication::AdaptiveReplication(std::shared_ptr<const TrustBook> book,
                                         int quorum)
    : book_(std::move(book)), quorum_(quorum) {
  SMARTRED_EXPECT(book_ != nullptr, "a trust book is required");
  SMARTRED_EXPECT(quorum >= 2, "replication quorum must be >= 2");
}

Decision AdaptiveReplication::decide(std::span<const Vote> votes) {
  if (votes.empty()) return Decision::dispatch(1);
  if (votes.size() == 1 && book_->trusted(votes.front().node)) {
    // The adaptive shortcut: trusted node, no replication at all.
    return Decision::accept(votes.front().value,
                            Decision::Reason::kTrustedNode);
  }
  const VoteTally tally{votes};
  if (tally.leader_count() >= quorum_) {
    return Decision::accept(tally.leader(), Decision::Reason::kQuorum);
  }
  // Fall back to plain quorum replication, topping up optimistically like
  // progressive redundancy does.
  return Decision::dispatch(quorum_ - tally.leader_count());
}

AdaptiveFactory::AdaptiveFactory(std::shared_ptr<TrustBook> book, int quorum)
    : book_(std::move(book)), quorum_(quorum) {
  SMARTRED_EXPECT(book_ != nullptr, "a trust book is required");
  SMARTRED_EXPECT(quorum >= 2, "replication quorum must be >= 2");
}

std::unique_ptr<RedundancyStrategy> AdaptiveFactory::make() const {
  return std::make_unique<AdaptiveReplication>(book_, quorum_);
}

std::string AdaptiveFactory::name() const {
  std::ostringstream out;
  out << "adaptive(trust=" << book_->threshold() << ",quorum=" << quorum_
      << ")";
  return out.str();
}

}  // namespace smartred::redundancy
