#include "redundancy/credibility.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace smartred::redundancy {

ReputationBook::ReputationBook(double assumed_fault_fraction)
    : fault_fraction_(assumed_fault_fraction) {
  SMARTRED_EXPECT(assumed_fault_fraction > 0.0 && assumed_fault_fraction < 1.0,
                  "assumed fault fraction must be in (0, 1)");
}

void ReputationBook::record_spot_check(NodeId node, bool passed) {
  Record& record = records_[node];
  if (passed) {
    ++record.passed;
  } else {
    record.blacklisted = true;
  }
}

bool ReputationBook::blacklisted(NodeId node) const {
  const auto found = records_.find(node);
  return found != records_.end() && found->second.blacklisted;
}

double ReputationBook::credibility(NodeId node) const {
  const auto found = records_.find(node);
  const int passed = found == records_.end() ? 0 : found->second.passed;
  // Sarmenta's credibility metric (simplified): surviving spot-checks makes
  // it ever less likely the node is one of the assumed f-fraction saboteurs.
  return 1.0 - fault_fraction_ / (static_cast<double>(passed) + 1.0);
}

void ReputationBook::forget(NodeId node) { records_.erase(node); }

std::size_t ReputationBook::blacklisted_count() const {
  std::size_t count = 0;
  for (const auto& [node, record] : records_) {
    if (record.blacklisted) ++count;
  }
  return count;
}

CredibilityStrategy::CredibilityStrategy(
    std::shared_ptr<const ReputationBook> book, double threshold)
    : book_(std::move(book)), threshold_(threshold) {
  SMARTRED_EXPECT(book_ != nullptr, "a reputation book is required");
  SMARTRED_EXPECT(threshold >= 0.5 && threshold < 1.0,
                  "threshold must be in [0.5, 1)");
}

double CredibilityStrategy::posterior(std::span<const Vote> votes,
                                      ResultValue value) const {
  SMARTRED_EXPECT(!votes.empty(), "posterior needs at least one vote");
  // Binary collusion worst case: a vote either endorses `value` or endorses
  // the (single) rival answer. Log-space product of per-vote likelihoods.
  double log_for = 0.0;
  double log_against = 0.0;
  for (const Vote& vote : votes) {
    if (book_->blacklisted(vote.node)) continue;  // voided vote
    const double cr = book_->credibility(vote.node);
    if (vote.value == value) {
      log_for += std::log(cr);
      log_against += std::log1p(-cr);
    } else {
      log_for += std::log1p(-cr);
      log_against += std::log(cr);
    }
  }
  return 1.0 / (1.0 + std::exp(log_against - log_for));
}

Decision CredibilityStrategy::decide(std::span<const Vote> votes) {
  // Count only votes from nodes that are still in good standing.
  VoteTally tally;
  for (const Vote& vote : votes) {
    if (!book_->blacklisted(vote.node)) tally.add(vote.value);
  }
  if (tally.total() == 0) return Decision::dispatch(1);
  const ResultValue leader = tally.leader();
  if (posterior(votes, leader) >= threshold_) {
    return Decision::accept(leader, Decision::Reason::kConfidenceReached);
  }
  // Unlike the margin rule, required future credibility is not predictable
  // (it depends on which nodes answer next), so grow one job at a time.
  return Decision::dispatch(1);
}

CredibilityFactory::CredibilityFactory(std::shared_ptr<ReputationBook> book,
                                       double threshold)
    : book_(std::move(book)), threshold_(threshold) {
  SMARTRED_EXPECT(book_ != nullptr, "a reputation book is required");
  SMARTRED_EXPECT(threshold >= 0.5 && threshold < 1.0,
                  "threshold must be in [0.5, 1)");
}

std::unique_ptr<RedundancyStrategy> CredibilityFactory::make() const {
  return std::make_unique<CredibilityStrategy>(book_, threshold_);
}

std::string CredibilityFactory::name() const {
  std::ostringstream out;
  out << "credibility(threshold=" << threshold_ << ")";
  return out.str();
}

}  // namespace smartred::redundancy
