// The redundancy-strategy interface: a per-task decision engine.
//
// A strategy is consulted in *waves*. The driver (Monte-Carlo sampler, DCA
// simulation, or volunteer-computing server) asks decide() with the votes
// received so far; the strategy answers either "dispatch n more jobs" or
// "accept this value". The first call — with no votes — yields the initial
// wave. This single interface is what lets one algorithm implementation run
// unchanged on all three of the paper's evaluation platforms.
//
// The three core techniques (traditional, progressive, iterative) are pure
// functions of the vote tally; the related-work comparators (credibility-
// based fault tolerance, adaptive replication) additionally read and update
// shared per-node reputation state, which is why decide() is non-const and
// why votes carry node ids.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "redundancy/types.h"

namespace smartred::redundancy {

/// What a strategy wants next for one task.
struct Decision {
  enum class Kind {
    kDispatch,  ///< run `jobs` more jobs, then consult the strategy again
    kAccept,    ///< done: `value` is the task's result
  };

  /// Why a value was accepted (or a task given up on) — one byte of
  /// explanation that traces and tests can assert on. Strategies set it on
  /// accept(); kNone keeps existing call sites source-compatible, and
  /// kBudgetExhausted is set by substrates when the per-task job cap aborts
  /// a task (a strategy itself never gives up).
  enum class Reason : std::uint8_t {
    kNone = 0,            ///< unspecified (legacy call sites, dispatches)
    kConfidenceReached,   ///< margin/posterior cleared the confidence bar
    kMajority,            ///< fixed-size vote completed with a majority
    kQuorum,              ///< some value reached the consensus quorum
    kTrustedNode,         ///< a trusted node's single result was accepted
    kBudgetExhausted,     ///< per-task job cap reached; task aborted
    kDecodeVerified,      ///< coded: a decoded codeword survived verification
    kAbandoned,           ///< run ended (pool starved) before a decision
  };

  Kind kind = Kind::kDispatch;
  int jobs = 0;             ///< valid when kind == kDispatch; always > 0
  ResultValue value = 0;    ///< valid when kind == kAccept
  Reason reason = Reason::kNone;  ///< why `value` was accepted
  /// Candidate codewords a coded strategy decoded and rejected during this
  /// decide() call (self-check or agreement failure — a Byzantine result
  /// caught before reconstruction). Zero for every non-coded strategy.
  /// Substrates surface it through metrics and the trace.
  std::int32_t decode_rejects = 0;

  static Decision dispatch(int jobs) {
    SMARTRED_EXPECT(jobs > 0, "a dispatch decision must request jobs");
    return Decision{Kind::kDispatch, jobs, 0, Reason::kNone};
  }
  static Decision accept(ResultValue value, Reason reason = Reason::kNone) {
    return Decision{Kind::kAccept, 0, value, reason};
  }

  [[nodiscard]] bool done() const { return kind == Kind::kAccept; }
};

/// Stable lower_snake_case name of a reason, for traces and table output.
[[nodiscard]] constexpr const char* to_string(Decision::Reason reason) {
  switch (reason) {
    case Decision::Reason::kNone: return "none";
    case Decision::Reason::kConfidenceReached: return "confidence_reached";
    case Decision::Reason::kMajority: return "majority";
    case Decision::Reason::kQuorum: return "quorum";
    case Decision::Reason::kTrustedNode: return "trusted_node";
    case Decision::Reason::kBudgetExhausted: return "budget_exhausted";
    case Decision::Reason::kDecodeVerified: return "decode_verified";
    case Decision::Reason::kAbandoned: return "abandoned";
  }
  return "unknown";
}

/// Maps a task's scalar result onto per-piece job values for strategies
/// that split a task into encoded pieces instead of replicating it whole.
/// Substrates consult the factory's encoder() (when non-null) at dispatch
/// and completion time: the j-th logical job a strategy ever requested for
/// a task (its *ordinal*, counted from 0 across waves) computes piece
/// piece_of(j), and a correct node reports job_value(task_value, j).
/// Implementations are immutable and shared across tasks and threads.
class TaskEncoder {
 public:
  virtual ~TaskEncoder() = default;

  /// Number of distinct pieces n; piece indices are [0, n).
  [[nodiscard]] virtual int pieces() const = 0;
  /// The piece the `ordinal`-th dispatched job computes. Requires
  /// ordinal >= 0.
  [[nodiscard]] virtual int piece_of(int ordinal) const = 0;
  /// What a correct node reports for the `ordinal`-th job of a task whose
  /// true result is `task_value`.
  [[nodiscard]] virtual ResultValue job_value(ResultValue task_value,
                                              int ordinal) const = 0;

 protected:
  TaskEncoder() = default;
  TaskEncoder(const TaskEncoder&) = default;
  TaskEncoder& operator=(const TaskEncoder&) = default;
};

/// Per-task decision engine. Instances are created per task by a
/// StrategyFactory and consulted once per completed wave.
class RedundancyStrategy {
 public:
  virtual ~RedundancyStrategy() = default;

  /// Given all votes returned so far for this task (in arrival order),
  /// returns the next action. Contract: when `votes` is empty the decision
  /// is always kDispatch (every technique runs at least one job).
  /// Drivers must pass a superset of the votes of the previous call.
  virtual Decision decide(std::span<const Vote> votes) = 0;

  /// Restores the freshly-constructed state, so one instance can be reused
  /// for the next task instead of allocating a new engine per task (the
  /// Monte-Carlo sampler processes tasks strictly one at a time and
  /// exploits this on its hot loop). Most strategies are pure functions of
  /// the vote tally (plus shared books) and inherit this no-op; a strategy
  /// with per-task fields must override it to match what its constructor
  /// establishes exactly — reuse must be indistinguishable from make().
  virtual void reset() {}

 protected:
  RedundancyStrategy() = default;
  RedundancyStrategy(const RedundancyStrategy&) = default;
  RedundancyStrategy& operator=(const RedundancyStrategy&) = default;
};

/// Creates per-task strategy instances. A factory also names the technique
/// and reports its configured parameter for logging and table output.
class StrategyFactory {
 public:
  virtual ~StrategyFactory() = default;

  /// A fresh decision engine for one task.
  [[nodiscard]] virtual std::unique_ptr<RedundancyStrategy> make() const = 0;

  /// True when instances from make() carry no mutable per-task state, i.e.
  /// decide() depends only on the votes passed in (and on shared books the
  /// substrate updates independently). A concurrent substrate may then
  /// consult ONE instance for any number of in-flight tasks instead of
  /// allocating one per task. Stateful strategies (self-tuning: first-wave
  /// size, margin floor) must keep the default `false`; sequential drivers
  /// can still reuse a single instance via RedundancyStrategy::reset().
  [[nodiscard]] virtual bool stateless() const { return false; }

  /// Non-null when this technique splits tasks into encoded pieces: the
  /// substrate must assign each logical job its dispatch ordinal, have a
  /// correct node report job_value(task_value, ordinal), and stamp the
  /// resulting Vote with piece_of(ordinal). Null (the default) keeps the
  /// replicate-whole-tasks contract unchanged. The encoder is owned by the
  /// factory and immutable, so one pointer serves all tasks and threads.
  [[nodiscard]] virtual const TaskEncoder* encoder() const { return nullptr; }

  /// True when the strategy wants decide() consulted after *every* vote
  /// rather than only at wave boundaries. An accept mid-wave settles the
  /// task immediately (outstanding copies are discarded on completion); a
  /// dispatch answer while jobs are still outstanding is ignored. Coded
  /// strategies opt in — accepting on the k-th fastest of n pieces, not
  /// the slowest, is where their straggler win comes from.
  [[nodiscard]] virtual bool eager() const { return false; }

  /// Technique name, e.g. "traditional(k=19)".
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  StrategyFactory() = default;
  StrategyFactory(const StrategyFactory&) = default;
  StrategyFactory& operator=(const StrategyFactory&) = default;
};

}  // namespace smartred::redundancy
