// Credibility-based fault tolerance — the related-work comparator of §5.1
// and [27] (Sarmenta, "Sabotage-tolerance mechanisms for volunteer computing
// systems", FGCS 2002), reimplemented in simplified but faithful form.
//
// The system spot-checks nodes with jobs whose answer is already known and
// maintains a per-node *credibility* that grows with survived spot-checks;
// a result is accepted once the Bayesian posterior of its vote group —
// weighting each vote by its node's credibility — clears a threshold. Nodes
// caught by a spot-check are blacklisted.
//
// The paper's argument, which the A6 ablation bench reproduces: this scheme
// (a) pays for spot-check jobs that do no useful work, (b) must store
// per-node history, and (c) is defeated by nodes that earn credibility and
// then cheat, or that shed a bad reputation by rejoining under a fresh
// identity — while iterative redundancy needs none of the machinery.
#pragma once

#include <memory>
#include <unordered_map>

#include "redundancy/strategy.h"

namespace smartred::redundancy {

/// Per-node spot-check history and blacklist. Shared by all per-task
/// strategy instances of one CredibilityFactory and updated by the driving
/// substrate as spot-check results arrive.
class ReputationBook {
 public:
  /// `assumed_fault_fraction` is Sarmenta's f: the assumed upper bound on
  /// the fraction of faulty nodes, which bounds how much a node with no
  /// history is trusted. Requires f in (0, 1).
  explicit ReputationBook(double assumed_fault_fraction);

  /// Records a spot-check outcome. A failed spot-check blacklists the node.
  void record_spot_check(NodeId node, bool passed);

  /// Blacklisted nodes should no longer receive jobs; their votes count for
  /// nothing.
  [[nodiscard]] bool blacklisted(NodeId node) const;

  /// Credibility = P[this node's job result is correct], estimated as
  /// 1 − f / (passed_spot_checks + 1). New nodes start at 1 − f.
  [[nodiscard]] double credibility(NodeId node) const;

  /// Simulates identity churn: the node rejoins under a new identity, so
  /// its history (including a blacklist entry) is forgotten.
  void forget(NodeId node);

  [[nodiscard]] std::size_t tracked_nodes() const { return records_.size(); }
  [[nodiscard]] std::size_t blacklisted_count() const;

 private:
  struct Record {
    int passed = 0;
    bool blacklisted = false;
  };

  double fault_fraction_;
  std::unordered_map<NodeId, Record> records_;
};

/// Accepts a result once the credibility-weighted posterior of its vote
/// group reaches the threshold; otherwise dispatches one more job.
class CredibilityStrategy final : public RedundancyStrategy {
 public:
  /// The book outlives every strategy instance (the factory keeps it
  /// alive). Requires threshold in [0.5, 1).
  CredibilityStrategy(std::shared_ptr<const ReputationBook> book,
                      double threshold);

  Decision decide(std::span<const Vote> votes) override;

  /// Posterior probability that `value` is the correct answer given the
  /// votes, treating each vote as independently correct with its node's
  /// credibility and normalizing over the values present (binary collusion
  /// worst case: every non-matching vote endorses the rival value).
  [[nodiscard]] double posterior(std::span<const Vote> votes,
                                 ResultValue value) const;

 private:
  std::shared_ptr<const ReputationBook> book_;
  double threshold_;
};

class CredibilityFactory final : public StrategyFactory {
 public:
  CredibilityFactory(std::shared_ptr<ReputationBook> book, double threshold);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Per-task stateless: all mutable state lives in the shared book, which
  /// the substrate updates regardless of how many instances exist.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

  /// The shared, mutable book the driving substrate feeds spot-check
  /// outcomes into.
  [[nodiscard]] ReputationBook& book() const { return *book_; }

 private:
  std::shared_ptr<ReputationBook> book_;
  double threshold_;
};

}  // namespace smartred::redundancy
