// Self-tuning iterative redundancy: specify a target reliability, not a
// margin.
//
// The paper offers two ways to parameterize iterative redundancy (§3.3):
// give the margin d directly, or give a confidence threshold R — the latter
// requires r. This strategy closes the loop: it estimates r online from
// vote agreement (ReliabilityEstimator) and re-derives the margin
// d = d(r̂, R) for every new task, so an operator can say "99% per task"
// and the system adapts as the pool's quality drifts — the "more adaptive"
// claim of the paper's abstract, made concrete.
//
// Until enough votes have been observed (or whenever the estimate falls
// below the usable range r > 0.5), the strategy falls back to a
// conservative initial margin.
#pragma once

#include <memory>

#include "redundancy/estimator.h"
#include "redundancy/strategy.h"

namespace smartred::redundancy {

struct SelfTuningConfig {
  /// Desired per-task reliability, in [0.5, 1).
  double target_reliability = 0.99;
  /// Margin used until the estimator warms up. >= 1.
  int initial_margin = 6;
  /// Votes the estimator must have seen before r̂ is trusted. >= 1.
  /// Deliberately large: in concurrent substrates the earliest-completing
  /// tasks are disproportionately unanimous (short), so a small sample is
  /// *biased*, not merely noisy, and no confidence interval fixes that —
  /// only letting the completion mix become representative does.
  int warmup_votes = 2'000;
  /// Upper bound on the derived margin (a safety valve against estimates
  /// barely above 0.5 demanding enormous margins). >= initial_margin.
  int max_margin = 64;
  /// Estimates at or below this are unusable (voting cannot reach any
  /// target when r <= 0.5); the initial margin is used instead.
  double min_usable_estimate = 0.55;
  /// Estimator forgetting factor, (0, 1]; < 1 tracks drifting pools.
  double forgetting = 1.0;
};

/// Per-task engine: a margin rule whose margin is re-derived from the
/// shared estimator at every decision — so a task created before the
/// estimator warmed up still benefits from what other tasks learned by the
/// time its waves return (substrates typically create all task strategies
/// up front). Two statistical safeguards, both load-bearing:
///
///  * Only the task's FIRST-WAVE votes feed the estimator. Agreement over
///    full margin-stopped tallies overestimates r by (2r−1)ρ^d/(1−ρ^d)
///    (optional stopping: agreement at the stop is exactly (n+d)/2n); the
///    fixed-size first wave reduces, though cannot eliminate, the
///    inflation — any agreement-with-accepted estimate inherits a bias of
///    order the per-task failure odds, which self-tuning's own margins keep
///    tiny (characterized in tests/sampling_bias_test.cc).
///  * A task's margin never decreases over its lifetime: estimator noise
///    must not let an in-flight task accept at a weaker margin than it was
///    created with.
class SelfTuningIterative final : public RedundancyStrategy {
 public:
  SelfTuningIterative(std::shared_ptr<ReliabilityEstimator> estimator,
                      const SelfTuningConfig& config);

  Decision decide(std::span<const Vote> votes) override;

  /// Clears the per-task fields (first-wave size, margin floor, reported
  /// flag) to exactly their freshly-constructed values — the constructor
  /// reads nothing from the estimator, so a reset instance is
  /// indistinguishable from a make() one.
  void reset() override {
    first_wave_ = 0;
    margin_floor_ = 0;
    reported_ = false;
  }

  /// The margin a decision made right now would use.
  [[nodiscard]] int margin() const;

 private:
  std::shared_ptr<ReliabilityEstimator> estimator_;
  SelfTuningConfig config_;
  int first_wave_ = 0;     ///< size of this task's first dispatch
  int margin_floor_ = 0;   ///< the margin never drops below this
  bool reported_ = false;
};

class SelfTuningFactory final : public StrategyFactory {
 public:
  explicit SelfTuningFactory(const SelfTuningConfig& config);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  [[nodiscard]] std::string name() const override;

  /// The margin the next task would use given the current estimate.
  [[nodiscard]] int current_margin() const;

  /// The shared estimator (e.g. to pre-seed it or read r̂).
  [[nodiscard]] ReliabilityEstimator& estimator() const {
    return *estimator_;
  }

 private:
  SelfTuningConfig config_;
  std::shared_ptr<ReliabilityEstimator> estimator_;
};

}  // namespace smartred::redundancy
