#include "redundancy/progressive.h"

namespace smartred::redundancy {

ProgressiveRedundancy::ProgressiveRedundancy(int k) : k_(k) {
  SMARTRED_EXPECT(k >= 1 && k % 2 == 1, "progressive redundancy needs odd k");
}

Decision ProgressiveRedundancy::decide(std::span<const Vote> votes) {
  const VoteTally tally{votes};
  if (tally.total() == 0) return Decision::dispatch(quorum());
  if (tally.leader_count() >= quorum()) {
    return Decision::accept(tally.leader(), Decision::Reason::kQuorum);
  }
  // Optimistic top-up: assume every new job will agree with the leader and
  // dispatch only what would then complete the quorum.
  return Decision::dispatch(quorum() - tally.leader_count());
}

ProgressiveFactory::ProgressiveFactory(int k) : k_(k) {
  SMARTRED_EXPECT(k >= 1 && k % 2 == 1, "progressive redundancy needs odd k");
}

std::unique_ptr<RedundancyStrategy> ProgressiveFactory::make() const {
  return std::make_unique<ProgressiveRedundancy>(k_);
}

std::string ProgressiveFactory::name() const {
  return "progressive(k=" + std::to_string(k_) + ")";
}

}  // namespace smartred::redundancy
