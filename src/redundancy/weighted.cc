#include "redundancy/weighted.h"

#include <cmath>
#include <sstream>

namespace smartred::redundancy {
namespace {

// Same boundary slack as the margin rule and the naive algorithm (see
// analysis::margin_for_confidence): thresholds are met up to 1e-12.
constexpr double kThresholdSlack = 1e-12;

double logit(double p) { return std::log(p) - std::log1p(-p); }

void check_params(double typical_reliability, double threshold) {
  SMARTRED_EXPECT(typical_reliability > 0.5 && typical_reliability < 1.0,
                  "typical reliability must be in (0.5, 1)");
  SMARTRED_EXPECT(threshold >= 0.5 && threshold < 1.0,
                  "threshold must be in [0.5, 1)");
}

}  // namespace

WeightedIterative::WeightedIterative(ReliabilityLookup lookup,
                                     double typical_reliability,
                                     double threshold)
    : lookup_(std::move(lookup)),
      typical_reliability_(typical_reliability),
      threshold_(threshold) {
  SMARTRED_EXPECT(lookup_ != nullptr, "a reliability lookup is required");
  check_params(typical_reliability, threshold);
}

double WeightedIterative::llr(std::span<const Vote> votes,
                              ResultValue value) const {
  // SoA split of the fold: the lookup/logit pass (indirect call + two logs
  // per vote, irreducibly scalar) fills parallel stack arrays of weights
  // and values, so the accumulation pass is a dense branch-free
  // multiply-add the vectorizer can chew on instead of a per-vote
  // sign branch interleaved with calls.
  constexpr std::size_t kChunk = 128;
  double weights[kChunk];
  ResultValue values[kChunk];
  double total = 0.0;
  const std::size_t n = votes.size();
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t chunk = std::min(kChunk, n - base);
    for (std::size_t j = 0; j < chunk; ++j) {
      const Vote& vote = votes[base + j];
      const double r = lookup_(vote.node);
      SMARTRED_EXPECT(r > 0.5 && r < 1.0,
                      "node reliability lookup must return values in (0.5, 1)");
      weights[j] = logit(r);
      values[j] = vote.value;
    }
    for (std::size_t j = 0; j < chunk; ++j) {
      total += values[j] == value ? weights[j] : -weights[j];
    }
  }
  return total;
}

double WeightedIterative::posterior(std::span<const Vote> votes,
                                    ResultValue value) const {
  return 1.0 / (1.0 + std::exp(-llr(votes, value)));
}

Decision WeightedIterative::decide(std::span<const Vote> votes) {
  const double per_vote_gain = logit(typical_reliability_);
  const double needed_llr = logit(threshold_);
  if (votes.empty()) {
    const int wave = std::max(
        1, static_cast<int>(std::ceil(needed_llr / per_vote_gain - 1e-9)));
    return Decision::dispatch(wave);
  }
  const VoteTally tally{votes};
  const ResultValue leader = tally.leader();
  const double current = llr(votes, leader);
  if (current >= needed_llr - kThresholdSlack) {
    return Decision::accept(leader, Decision::Reason::kConfidenceReached);
  }
  // Minimum number of typical-quality agreeing votes closing the gap —
  // exactly the weighted analogue of the margin rule's d − (a − b).
  const double deficit = needed_llr - current;
  const int wave = std::max(
      1, static_cast<int>(std::ceil(deficit / per_vote_gain - 1e-9)));
  return Decision::dispatch(wave);
}

WeightedIterativeFactory::WeightedIterativeFactory(ReliabilityLookup lookup,
                                                   double typical_reliability,
                                                   double threshold)
    : lookup_(std::move(lookup)),
      typical_reliability_(typical_reliability),
      threshold_(threshold) {
  SMARTRED_EXPECT(lookup_ != nullptr, "a reliability lookup is required");
  check_params(typical_reliability, threshold);
}

std::unique_ptr<RedundancyStrategy> WeightedIterativeFactory::make() const {
  return std::make_unique<WeightedIterative>(lookup_, typical_reliability_,
                                             threshold_);
}

std::string WeightedIterativeFactory::name() const {
  std::ostringstream out;
  out << "weighted-iterative(R=" << threshold_ << ")";
  return out.str();
}

}  // namespace smartred::redundancy
