// Weighted iterative redundancy — the paper's §5.3 "complex form of the
// iterative redundancy algorithm" for systems that DO know (or estimate)
// per-node reliabilities.
//
// When job failure probabilities differ per node and the scheduler knows
// them, the margin-only simplification no longer extracts all available
// information: a vote from a 0.95-reliable node should weigh more than one
// from a 0.55-reliable node. This strategy accumulates the exact Bayesian
// log-likelihood ratio
//
//   LLR(v) = Σ_{votes for v} ln(r_i / (1−r_i)) − Σ_{votes against} ...
//
// and accepts when the posterior clears the confidence threshold R; the
// wave size is the number of average-quality agreeing votes that would
// close the remaining gap (the weighted analogue of dispatching d − (a−b)).
//
// With a uniform pool this reduces exactly to the simple margin rule — a
// property the test suite checks — so it generalizes, never contradicts,
// the core technique.
#pragma once

#include <functional>

#include "redundancy/strategy.h"

namespace smartred::redundancy {

/// Looks up the (estimated) reliability of a node, in (0.5, 1).
using ReliabilityLookup = std::function<double(NodeId)>;

class WeightedIterative final : public RedundancyStrategy {
 public:
  /// `lookup` supplies per-node reliabilities; `typical_reliability` is the
  /// pool average used to size waves (any value in (0.5, 1) is safe — it
  /// affects only how many jobs are requested per wave, not correctness);
  /// `threshold` is the target confidence R in [0.5, 1).
  WeightedIterative(ReliabilityLookup lookup, double typical_reliability,
                    double threshold);

  Decision decide(std::span<const Vote> votes) override;

  /// The posterior probability that `value` is correct given the votes
  /// (binary collusion worst case).
  [[nodiscard]] double posterior(std::span<const Vote> votes,
                                 ResultValue value) const;

 private:
  /// Log-likelihood ratio in favor of `value`.
  [[nodiscard]] double llr(std::span<const Vote> votes,
                           ResultValue value) const;

  ReliabilityLookup lookup_;
  double typical_reliability_;
  double threshold_;
};

class WeightedIterativeFactory final : public StrategyFactory {
 public:
  WeightedIterativeFactory(ReliabilityLookup lookup,
                           double typical_reliability, double threshold);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Per-task stateless: decide() reads only the votes and the immutable
  /// lookup, so one instance serves any task mix.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

 private:
  ReliabilityLookup lookup_;
  double typical_reliability_;
  double threshold_;
};

}  // namespace smartred::redundancy
