// Online estimation of the pool's per-job reliability r from vote
// agreement.
//
// Iterative redundancy never *needs* r — that is its headline property —
// but an estimate is still operationally useful: the paper itself derives
// the PlanetLab pool's effective reliability (0.64 < r < 0.67) from its
// measurements (§4.2), and an operator who wants to specify a target
// *reliability* instead of a margin d must translate one into the other.
// This module provides that translation loop:
//
//   ReliabilityEstimator — counts votes that agreed with accepted results,
//       with optional exponential forgetting so drifting pools re-estimate.
//   estimate_from_cost   — inverts the paper's C_IR ≈ d/(2r−1)
//       approximation, the other way the paper back-derives r.
//
// Bias note: votes agreeing with a *wrong* accepted result are counted as
// correct, so the estimator overestimates r by O(1 − R_system); with any
// reasonable redundancy parameter that bias is far below the statistical
// noise floor.
#pragma once

#include <cstddef>

#include "common/stats.h"
#include "redundancy/types.h"

namespace smartred::redundancy {

class ReliabilityEstimator {
 public:
  /// `forgetting` in (0, 1]: per-task multiplicative decay applied to the
  /// accumulated counts, so recent tasks dominate. 1.0 (default) never
  /// forgets — the right choice for stationary pools; ~0.999 tracks slow
  /// drift; ~0.99 tracks fast drift at the price of noisier estimates.
  explicit ReliabilityEstimator(double forgetting = 1.0);

  /// Records one completed task: its final tally and the accepted value.
  void observe_task(const VoteTally& tally, ResultValue accepted);

  /// Records pre-aggregated counts (`agreeing` of `total` votes matched
  /// the accepted value). Requires 0 <= agreeing <= total.
  void observe_votes(int agreeing, int total);

  /// Whether enough votes have been seen for estimate() to be meaningful.
  [[nodiscard]] bool has_estimate() const { return weighted_total_ > 0.0; }

  /// The current estimate of r. Requires has_estimate().
  [[nodiscard]] double estimate() const;

  /// Effective number of votes behind the estimate (decays under
  /// forgetting).
  [[nodiscard]] double effective_votes() const { return weighted_total_; }

  /// Raw (undecayed) number of votes ever observed.
  [[nodiscard]] std::size_t votes_observed() const { return raw_votes_; }

  /// Wilson score interval on r, using the effective vote count.
  /// Requires has_estimate().
  [[nodiscard]] stats::Interval interval(double z = 1.96) const;

 private:
  double forgetting_;
  double weighted_agreeing_ = 0.0;
  double weighted_total_ = 0.0;
  std::size_t raw_votes_ = 0;
};

/// Back-derives r from a measured iterative-redundancy cost factor using
/// the paper's approximation C_IR ≈ d/(2r−1): r ≈ (d/C + 1)/2.
/// Requires d >= 1 and measured_cost >= d.
[[nodiscard]] double estimate_from_cost(int d, double measured_cost);

}  // namespace smartred::redundancy
