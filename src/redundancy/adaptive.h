// BOINC-style adaptive replication — the related-work comparator of §5.1.
//
// BOINC "prevents replication of a task if a trusted node returns its
// result": a node becomes trusted after a run of consecutively validated
// results, and a trusted node's answer is then accepted without any vote.
// Untrusted nodes fall back to quorum-2 replication.
//
// The paper's criticism, reproduced by the A6 ablation bench: a patient
// malicious node can *earn* trust by answering correctly until trusted and
// then report wrong results that are accepted unchecked — and each wrong
// result that slips through is itself recorded as "validated", keeping the
// node trusted. Iterative redundancy has no per-node state to poison.
#pragma once

#include <memory>
#include <unordered_map>

#include "redundancy/strategy.h"

namespace smartred::redundancy {

/// Per-node record of consecutively validated results. Shared by all task
/// strategy instances of one AdaptiveFactory; the driving substrate calls
/// record_validated() as tasks complete.
class TrustBook {
 public:
  /// A node is trusted after `threshold` consecutive validated results.
  /// Requires threshold >= 1.
  explicit TrustBook(int threshold);

  /// Records the outcome of validating one of `node`'s results. `valid`
  /// means the result agreed with the accepted answer (or was accepted
  /// unchecked — BOINC cannot tell the difference, which is the
  /// vulnerability). An invalid result resets the run.
  void record_validated(NodeId node, bool valid);

  [[nodiscard]] bool trusted(NodeId node) const;
  [[nodiscard]] int consecutive_valid(NodeId node) const;
  [[nodiscard]] int threshold() const { return threshold_; }

  /// Identity churn: the node rejoins under a new identity.
  void forget(NodeId node);

 private:
  int threshold_;
  std::unordered_map<NodeId, int> streaks_;
};

/// Accepts a single result from a trusted node immediately; otherwise
/// replicates until some value has `quorum` matching votes.
class AdaptiveReplication final : public RedundancyStrategy {
 public:
  /// Requires quorum >= 2.
  AdaptiveReplication(std::shared_ptr<const TrustBook> book, int quorum);

  Decision decide(std::span<const Vote> votes) override;

 private:
  std::shared_ptr<const TrustBook> book_;
  int quorum_;
};

class AdaptiveFactory final : public StrategyFactory {
 public:
  AdaptiveFactory(std::shared_ptr<TrustBook> book, int quorum);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Per-task stateless: all mutable state lives in the shared book, which
  /// the substrate updates regardless of how many instances exist.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] TrustBook& book() const { return *book_; }

 private:
  std::shared_ptr<TrustBook> book_;
  int quorum_;
};

}  // namespace smartred::redundancy
