// Wave-level Monte-Carlo execution of redundancy strategies.
//
// This driver runs a strategy on synthetic vote streams without any
// discrete-event machinery — the fastest way to measure cost factor and
// reliability, and the harness used to verify Equations (1)–(6) empirically.
// The DES-based DCA (src/dca) and the volunteer-computing deployment
// (src/boinc) run the *same strategy objects* with real scheduling.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/histogram.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "redundancy/strategy.h"

namespace smartred::redundancy {

/// The value a correct job reports in binary experiments.
inline constexpr ResultValue kCorrectValue = 1;
/// The colluding wrong value of the binary Byzantine worst case (§2.2).
inline constexpr ResultValue kWrongValue = 0;

/// Produces the vote of the `job_index`-th job of task `task`. The source
/// owns all randomness (via the provided stream) and all failure modeling.
using VoteSource =
    std::function<Vote(std::uint64_t task, int job_index, rng::Stream& rng)>;

/// Aggregate results of a Monte-Carlo run.
struct MonteCarloResult {
  std::uint64_t tasks = 0;
  std::uint64_t tasks_correct = 0;
  std::uint64_t tasks_aborted = 0;  ///< hit the per-task job cap
  std::uint64_t jobs_total = 0;
  int max_jobs_single_task = 0;
  stats::StreamingStats jobs_per_task;
  stats::StreamingStats waves_per_task;
  /// Tail-resolving distribution of jobs per task (lazily allocated;
  /// integer merge state — bit-identical merged at any thread count).
  obs::LogHistogram jobs_per_task_hist;

  /// Measured cost factor: average jobs per task.
  [[nodiscard]] double cost_factor() const;
  /// Measured system reliability: fraction of tasks that accepted the
  /// correct value.
  [[nodiscard]] double reliability() const;
  /// Wilson score interval on the measured reliability (z = 1.96 is 95%).
  [[nodiscard]] stats::Interval reliability_interval(double z = 1.96) const;

  /// Accumulates another run's results into this one (counters add,
  /// streaming statistics merge, extrema take the max) — the reduction the
  /// parallel experiment runner applies across replications, in a fixed
  /// fold order so merged aggregates are bit-identical at any thread count.
  void merge(const MonteCarloResult& other);
};

struct MonteCarloConfig {
  std::uint64_t tasks = 100'000;
  std::uint64_t seed = 1;
  /// Safety cap on jobs per task; a task that reaches it is recorded as
  /// aborted and counted incorrect. Never reached by the paper's techniques
  /// under sane parameters — the cap exists to keep adversarial inputs from
  /// hanging an experiment.
  int max_jobs_per_task = 100'000;
  /// Optional flight recorder. Monte-Carlo runs have no simulated clock, so
  /// events are stamped with the task index as their "time" — within a task
  /// they stay in decision order. Null disables tracing at zero cost.
  obs::Recorder* recorder = nullptr;
  /// Optional sweep-progress sampler: every `sample_every` tasks the run
  /// records cumulative cost factor, reliability-so-far, and abort count as
  /// time-series (time = task index). Read-only observations — a sampled
  /// run's aggregates are bit-identical to an unsampled run's. Null
  /// disables sampling at zero cost.
  obs::TimeSeriesRecorder* timeseries = nullptr;
  /// Sampling stride in tasks; values < 1 are treated as 1.
  std::uint64_t sample_every = 1024;
};

/// Runs `factory`'s strategy over binary worst-case votes: each job is
/// correct with probability `reliability`, otherwise it reports the single
/// colluding wrong value. Requires reliability in [0, 1].
[[nodiscard]] MonteCarloResult run_binary(const StrategyFactory& factory,
                                          double reliability,
                                          const MonteCarloConfig& config);

/// Runs `factory`'s strategy over votes drawn from an arbitrary source
/// (heterogeneous reliabilities, non-binary results, correlated failures...).
/// `correct_value` is what counts as a correct task outcome.
[[nodiscard]] MonteCarloResult run_custom(const StrategyFactory& factory,
                                          const VoteSource& source,
                                          ResultValue correct_value,
                                          const MonteCarloConfig& config);

}  // namespace smartred::redundancy
