// Iterative redundancy — the paper's contribution (§3.3, Figure 4).
//
// The *simple algorithm*: keep dispatching jobs until the majority result
// leads the minority by a fixed margin d. By Theorems 1 and 2 the confidence
// q(r, a, b) in a vote split depends only on the margin a − b, so this
// margin rule achieves exactly the reliability R = r^d / (r^d + (1−r)^d)
// (Equation (6)) at expected cost given by Equation (5) — the minimum number
// of jobs for that reliability — without the system ever knowing r.
//
//   COMPUTE(task, d):
//     a ← 0; b ← 0
//     while a − b < d:
//       deploy d − (a − b) jobs on independent, randomly chosen nodes
//       a ← a + matching results;  b ← b + disagreeing results
//       if a < b: swap(a, b)
//     return the a result
//
// With non-binary results the margin generalizes to leader-minus-runner-up,
// which the paper notes is only more favorable (§5.3).
#pragma once

#include "redundancy/strategy.h"

namespace smartred::redundancy {

class IterativeRedundancy final : public RedundancyStrategy {
 public:
  /// Requires margin d >= 1. (d = 1 means: accept the first result whenever
  /// one value leads, i.e. no redundancy until a conflict appears.)
  explicit IterativeRedundancy(int d);

  Decision decide(std::span<const Vote> votes) override;

 private:
  int d_;
};

class IterativeFactory final : public StrategyFactory {
 public:
  explicit IterativeFactory(int d);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Pure function of the vote tally: one instance serves any task mix.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int d() const { return d_; }

 private:
  int d_;
};

}  // namespace smartred::redundancy
