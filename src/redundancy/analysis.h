// Closed-form analysis of the three redundancy techniques — Equations (1)
// through (6) of the paper, plus the wave/response-time distributions needed
// for Figure 6 and the reliability-matched cost comparison of Figure 5(c).
//
// Conventions:
//   r — average node (job) reliability, in (0, 1); techniques assume r > 0.5
//       for their guarantees but the formulas are total over (0, 1).
//   k — traditional / progressive vote parameter, odd, >= 1.
//   d — iterative margin, >= 1.
// "Cost factor" is the expected number of jobs per task (1 = no redundancy).
#pragma once

#include <vector>

namespace smartred::redundancy::analysis {

// ---------------------------------------------------------------------------
// Confidence (paper §3.3) and Theorem 1/2 quantities.
// ---------------------------------------------------------------------------

/// q(r, a, b): the Bayesian confidence that the a-majority of an (a, b) vote
/// split is correct. Equals 1 / (1 + ((1−r)/r)^(a−b)) — Theorem 1: it
/// depends on a and b only through the margin a − b.
[[nodiscard]] double confidence(double r, int majority, int minority);

/// Confidence as a function of margin alone (Theorem 2's constant c):
/// r^d / (r^d + (1−r)^d). Accepts real-valued d for the continuous
/// interpolation used by reliability-matched comparisons.
[[nodiscard]] double confidence_at_margin(double r, double margin);

/// d(r, R, 0): the minimum margin d such that confidence_at_margin >= R.
/// Requires r in (0.5, 1) and R in [0.5, 1). This is the paper's d number a
/// task server computes once.
[[nodiscard]] int margin_for_confidence(double r, double target);

/// Real-valued margin d* solving confidence_at_margin(r, d*) == R exactly:
/// d* = ln(R/(1−R)) / ln(r/(1−r)). Requires r in (0.5, 1), R in [0.5, 1).
[[nodiscard]] double continuous_margin(double r, double target);

// ---------------------------------------------------------------------------
// Traditional redundancy (Equations (1) and (2)).
// ---------------------------------------------------------------------------

/// C_TR(k) = k.
[[nodiscard]] double traditional_cost(int k);

/// R_TR(k, r) = sum_{i=0}^{(k−1)/2} C(k, i) r^(k−i) (1−r)^i.
[[nodiscard]] double traditional_reliability(int k, double r);

/// 1 − R_TR(k, r), computed on the failure side so it stays accurate when
/// the reliability rounds to 1.0 in double precision (needed by the
/// reliability-matched comparisons at high r).
[[nodiscard]] double traditional_failure(int k, double r);

// ---------------------------------------------------------------------------
// Progressive redundancy (Equations (3) and (4)).
// ---------------------------------------------------------------------------

/// C_PR(k, r): quorum plus, for each job index beyond the quorum, the
/// probability that it is needed (no consensus among the earlier results).
[[nodiscard]] double progressive_cost(int k, double r);

/// R_PR(k, r) = R_TR(k, r) (Equation (4)).
[[nodiscard]] double progressive_reliability(int k, double r);

// ---------------------------------------------------------------------------
// Iterative redundancy (Equations (5) and (6)).
// ---------------------------------------------------------------------------

/// R_IR(d, r) = r^d / (r^d + (1−r)^d) (Equation (6)).
[[nodiscard]] double iterative_reliability(int d, double r);

/// 1 − R_IR(d, r) = (1−r)^d / (r^d + (1−r)^d), computed on the failure
/// side so it stays meaningful when the reliability saturates to 1.0 in
/// double precision (large d, high r).
[[nodiscard]] double iterative_failure(int d, double r);

/// C_IR(d, r) (Equation (5)): expected number of jobs until the vote margin
/// reaches d — the mean absorption time of a ±1 random walk with absorbing
/// barriers at ±d, computed by exact probability-mass evolution to residual
/// < `epsilon`.
[[nodiscard]] double iterative_cost(int d, double r, double epsilon = 1e-13);

/// The paper's closed-form approximation C_IR ≈ d / (2r − 1), exact in the
/// limit of large d. Requires r > 0.5.
[[nodiscard]] double iterative_cost_approx(int d, double r);

/// Cost at a real-valued margin, linearly interpolated between the two
/// bracketing integers (used for reliability-matched comparisons).
/// Requires d_real >= 1.
[[nodiscard]] double iterative_cost_continuous(double d_real, double r,
                                               double epsilon = 1e-13);

/// P[task completes after exactly d + 2b jobs] for b = 0, 1, ... — the
/// weights of Equation (5). Truncated when the residual mass drops below
/// `epsilon`; the final element absorbs nothing (probabilities sum to
/// ~1 − epsilon).
[[nodiscard]] std::vector<double> iterative_job_count_distribution(
    int d, double r, double epsilon = 1e-13);

/// Variance of the iterative job count (spread around Equation (5)'s mean;
/// drives the error bars of the measured-cost figures).
[[nodiscard]] double iterative_cost_variance(int d, double r,
                                             double epsilon = 1e-13);

/// Smallest job count n with P[jobs <= n] >= q. Requires q in [0, 1).
[[nodiscard]] int iterative_job_count_quantile(int d, double r, double q,
                                               double epsilon = 1e-13);

/// P[task completes after exactly n jobs] for n = quorum..k under
/// progressive redundancy (index 0 holds P[jobs = quorum]).
[[nodiscard]] std::vector<double> progressive_job_count_distribution(
    int k, double r);

/// Variance of the progressive job count.
[[nodiscard]] double progressive_cost_variance(int k, double r);

// ---------------------------------------------------------------------------
// Wave analysis (paper §5.2 — response time).
// ---------------------------------------------------------------------------

/// Distribution of the number of *waves* a technique needs per task
/// (index w-1 holds P[exactly w waves]). Traditional always uses one wave;
/// progressive at most (k+1)/2 waves in the binary model; iterative has an
/// unbounded (geometric-tailed) wave count, truncated at residual epsilon.
[[nodiscard]] std::vector<double> traditional_wave_distribution();
[[nodiscard]] std::vector<double> progressive_wave_distribution(
    int k, double r, double epsilon = 1e-13);
[[nodiscard]] std::vector<double> iterative_wave_distribution(
    int d, double r, double epsilon = 1e-13);

/// Expected number of waves (mean of the corresponding distribution).
[[nodiscard]] double expected_waves(const std::vector<double>& distribution);

/// Expected response time of one task in simulated time units, assuming the
/// paper's XDEVS workload model: each job's duration is uniform in
/// [0.5, 1.5], jobs of a wave run in parallel, and waves are sequential.
/// (E[max of w i.i.d. U(0.5, 1.5)] = 0.5 + w/(w+1).)
[[nodiscard]] double expected_response_traditional(int k);
[[nodiscard]] double expected_response_progressive(int k, double r,
                                                   double epsilon = 1e-13);
[[nodiscard]] double expected_response_iterative(int d, double r,
                                                 double epsilon = 1e-13);

// ---------------------------------------------------------------------------
// Reliability-matched comparison (Figure 5(c)).
// ---------------------------------------------------------------------------

/// Cost-factor improvement of progressive over traditional at equal
/// reliability (same k, identical reliability by Equation (4)):
/// k / C_PR(k, r).
[[nodiscard]] double progressive_improvement(int k, double r);

/// Cost-factor improvement of iterative over traditional at equal
/// reliability: finds the real-valued margin d* with
/// R_IR(d*, r) = R_TR(k, r) and returns k / C_IR(d*, r).
[[nodiscard]] double iterative_improvement(int k, double r);

}  // namespace smartred::redundancy::analysis
