#include "redundancy/iterative.h"

namespace smartred::redundancy {

IterativeRedundancy::IterativeRedundancy(int d) : d_(d) {
  SMARTRED_EXPECT(d >= 1, "iterative redundancy needs margin d >= 1");
}

Decision IterativeRedundancy::decide(std::span<const Vote> votes) {
  if (votes.empty()) return Decision::dispatch(d_);
  // fold() absorbs the whole wave in dense branch-free passes; standing()
  // extracts leader + runner-up in one scan.
  const VoteTally tally{votes};
  const VoteTally::Standing standing = tally.standing();
  const int margin = standing.margin();
  if (margin >= d_) {
    return Decision::accept(standing.leader,
                            Decision::Reason::kConfidenceReached);
  }
  return Decision::dispatch(d_ - margin);
}

IterativeFactory::IterativeFactory(int d) : d_(d) {
  SMARTRED_EXPECT(d >= 1, "iterative redundancy needs margin d >= 1");
}

std::unique_ptr<RedundancyStrategy> IterativeFactory::make() const {
  return std::make_unique<IterativeRedundancy>(d_);
}

std::string IterativeFactory::name() const {
  return "iterative(d=" + std::to_string(d_) + ")";
}

}  // namespace smartred::redundancy
