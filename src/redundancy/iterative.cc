#include "redundancy/iterative.h"

namespace smartred::redundancy {

IterativeRedundancy::IterativeRedundancy(int d) : d_(d) {
  SMARTRED_EXPECT(d >= 1, "iterative redundancy needs margin d >= 1");
}

Decision IterativeRedundancy::decide(std::span<const Vote> votes) {
  const VoteTally tally{votes};
  if (tally.total() == 0) return Decision::dispatch(d_);
  const int margin = tally.margin();
  if (margin >= d_) {
    return Decision::accept(tally.leader(),
                            Decision::Reason::kConfidenceReached);
  }
  return Decision::dispatch(d_ - margin);
}

IterativeFactory::IterativeFactory(int d) : d_(d) {
  SMARTRED_EXPECT(d >= 1, "iterative redundancy needs margin d >= 1");
}

std::unique_ptr<RedundancyStrategy> IterativeFactory::make() const {
  return std::make_unique<IterativeRedundancy>(d_);
}

std::string IterativeFactory::name() const {
  return "iterative(d=" + std::to_string(d_) + ")";
}

}  // namespace smartred::redundancy
