#include "redundancy/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace smartred::redundancy {

ReliabilityEstimator::ReliabilityEstimator(double forgetting)
    : forgetting_(forgetting) {
  SMARTRED_EXPECT(forgetting > 0.0 && forgetting <= 1.0,
                  "forgetting factor must be in (0, 1]");
}

void ReliabilityEstimator::observe_task(const VoteTally& tally,
                                        ResultValue accepted) {
  observe_votes(tally.count(accepted), tally.total());
}

void ReliabilityEstimator::observe_votes(int agreeing, int total) {
  SMARTRED_EXPECT(agreeing >= 0 && agreeing <= total,
                  "agreeing votes must be within [0, total]");
  if (total == 0) return;
  weighted_agreeing_ = weighted_agreeing_ * forgetting_ + agreeing;
  weighted_total_ = weighted_total_ * forgetting_ + total;
  raw_votes_ += static_cast<std::size_t>(total);
}

double ReliabilityEstimator::estimate() const {
  SMARTRED_EXPECT(has_estimate(), "no votes observed yet");
  return weighted_agreeing_ / weighted_total_;
}

stats::Interval ReliabilityEstimator::interval(double z) const {
  SMARTRED_EXPECT(has_estimate(), "no votes observed yet");
  // Round the effective counts for the Wilson interval; under forgetting
  // the effective sample size is what controls the width.
  const auto total = static_cast<std::size_t>(
      std::max(1.0, std::round(weighted_total_)));
  const auto agreeing = std::min(
      total, static_cast<std::size_t>(std::round(weighted_agreeing_)));
  return stats::wilson_interval(agreeing, total, z);
}

double estimate_from_cost(int d, double measured_cost) {
  SMARTRED_EXPECT(d >= 1, "margin d must be >= 1");
  SMARTRED_EXPECT(measured_cost >= static_cast<double>(d),
                  "cost cannot be below d");
  return (static_cast<double>(d) / measured_cost + 1.0) / 2.0;
}

}  // namespace smartred::redundancy
