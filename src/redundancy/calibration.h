// Parameter calibration: choosing k or d for a desired system reliability.
//
// The paper's operators pick a redundancy parameter; these helpers invert
// the reliability formulas so experiments (and deployments that *do* know
// an estimate of r) can compare techniques at matched reliability, as
// Figure 5(c) does.
#pragma once

namespace smartred::redundancy::calibration {

/// Smallest odd k with R_TR(k, r) >= target. Requires r in (0.5, 1) and
/// target in [0.5, 1); throws smartred::PreconditionError if no k up to
/// `k_max` suffices.
[[nodiscard]] int min_k_for_reliability(double r, double target,
                                        int k_max = 9'999);

/// Smallest margin d with R_IR(d, r) >= target. Requires r in (0.5, 1) and
/// target in [0.5, 1). (Identical to analysis::margin_for_confidence; named
/// for symmetry with min_k_for_reliability.)
[[nodiscard]] int min_d_for_reliability(double r, double target);

/// Matched-reliability cost of each technique for a given target: the cost
/// factor each technique pays to reach `target` reliability at node
/// reliability r, using the smallest adequate integer parameter.
struct MatchedCosts {
  int k = 0;               ///< chosen traditional/progressive parameter
  int d = 0;               ///< chosen iterative margin
  double traditional = 0;  ///< = k
  double progressive = 0;  ///< C_PR(k, r)
  double iterative = 0;    ///< C_IR(d, r)
  double traditional_reliability = 0;
  double iterative_reliability = 0;
};

[[nodiscard]] MatchedCosts costs_for_target(double r, double target);

}  // namespace smartred::redundancy::calibration
