#include "redundancy/self_tuning.h"

#include <algorithm>
#include <sstream>

#include "redundancy/analysis.h"

namespace smartred::redundancy {
namespace {

void check_config(const SelfTuningConfig& config) {
  SMARTRED_EXPECT(config.target_reliability >= 0.5 &&
                      config.target_reliability < 1.0,
                  "target reliability must be in [0.5, 1)");
  SMARTRED_EXPECT(config.initial_margin >= 1, "initial margin must be >= 1");
  SMARTRED_EXPECT(config.warmup_votes >= 1, "warmup must be >= 1 vote");
  SMARTRED_EXPECT(config.max_margin >= config.initial_margin,
                  "max margin must admit the initial margin");
  SMARTRED_EXPECT(config.min_usable_estimate > 0.5 &&
                      config.min_usable_estimate < 1.0,
                  "usable-estimate floor must be in (0.5, 1)");
}

/// The margin to use given the estimator's current state. Uses the Wilson
/// *lower* confidence bound of r̂, not the point estimate: while the
/// estimate is noisy the derived margin stays conservative (a briefly
/// optimistic r̂ must not let tasks accept at too-small margins), and the
/// bound converges to r̂ as evidence accumulates.
int derive_margin(const ReliabilityEstimator& estimator,
                  const SelfTuningConfig& config) {
  if (!estimator.has_estimate() ||
      estimator.effective_votes() <
          static_cast<double>(config.warmup_votes)) {
    return config.initial_margin;
  }
  const double r_bound = estimator.interval(/*z=*/3.0).lo;
  if (r_bound < config.min_usable_estimate) return config.initial_margin;
  // Cap away from 1.0, where the derived margin collapses to 1 on noise.
  const double r_capped = std::min(r_bound, 0.9999);
  const int margin = analysis::margin_for_confidence(
      r_capped, config.target_reliability);
  return std::clamp(margin, 1, config.max_margin);
}

}  // namespace

SelfTuningIterative::SelfTuningIterative(
    std::shared_ptr<ReliabilityEstimator> estimator,
    const SelfTuningConfig& config)
    : estimator_(std::move(estimator)), config_(config) {
  SMARTRED_EXPECT(estimator_ != nullptr, "an estimator is required");
  check_config(config);
}

int SelfTuningIterative::margin() const {
  return std::max(margin_floor_, derive_margin(*estimator_, config_));
}

Decision SelfTuningIterative::decide(std::span<const Vote> votes) {
  // Re-derive at every decision: tasks whose strategies were created
  // before the estimator warmed up pick up the learned margin as soon as
  // their first wave returns (the §3.3 naive algorithm's "reevaluates the
  // situation", applied to the estimate itself). Ratcheted: once this task
  // has run at a margin, it never accepts at a weaker one.
  const int target_margin = margin();
  margin_floor_ = target_margin;
  const VoteTally tally{votes};
  if (tally.total() == 0) {
    first_wave_ = target_margin;
    return Decision::dispatch(target_margin);
  }
  const int current = tally.margin();
  if (current >= target_margin) {
    const ResultValue accepted = tally.leader();
    if (!reported_) {
      // Feed back exactly once (drivers may re-consult with the same final
      // votes), and only the first-wave votes: they are a fixed-size
      // sample, untainted by the stopping rule.
      const int sample = std::min(first_wave_ > 0 ? first_wave_ : 1,
                                  tally.total());
      int agreeing = 0;
      for (int i = 0; i < sample; ++i) {
        if (votes[static_cast<std::size_t>(i)].value == accepted) ++agreeing;
      }
      estimator_->observe_votes(agreeing, sample);
      reported_ = true;
    }
    return Decision::accept(accepted, Decision::Reason::kConfidenceReached);
  }
  return Decision::dispatch(target_margin - current);
}

SelfTuningFactory::SelfTuningFactory(const SelfTuningConfig& config)
    : config_(config),
      estimator_(std::make_shared<ReliabilityEstimator>(config.forgetting)) {
  check_config(config);
}

std::unique_ptr<RedundancyStrategy> SelfTuningFactory::make() const {
  return std::make_unique<SelfTuningIterative>(estimator_, config_);
}

int SelfTuningFactory::current_margin() const {
  return derive_margin(*estimator_, config_);
}

std::string SelfTuningFactory::name() const {
  std::ostringstream out;
  out << "self-tuning(R=" << config_.target_reliability << ")";
  return out.str();
}

}  // namespace smartred::redundancy
