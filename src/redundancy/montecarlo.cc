#include "redundancy/montecarlo.h"

#include <algorithm>
#include <vector>

#include "common/expect.h"

namespace smartred::redundancy {

double MonteCarloResult::cost_factor() const {
  SMARTRED_EXPECT(tasks > 0, "cost_factor() of an empty run");
  return static_cast<double>(jobs_total) / static_cast<double>(tasks);
}

double MonteCarloResult::reliability() const {
  SMARTRED_EXPECT(tasks > 0, "reliability() of an empty run");
  return static_cast<double>(tasks_correct) / static_cast<double>(tasks);
}

stats::Interval MonteCarloResult::reliability_interval(double z) const {
  return stats::wilson_interval(tasks_correct, tasks, z);
}

void MonteCarloResult::merge(const MonteCarloResult& other) {
  tasks += other.tasks;
  tasks_correct += other.tasks_correct;
  tasks_aborted += other.tasks_aborted;
  jobs_total += other.jobs_total;
  max_jobs_single_task =
      std::max(max_jobs_single_task, other.max_jobs_single_task);
  jobs_per_task.merge(other.jobs_per_task);
  waves_per_task.merge(other.waves_per_task);
  jobs_per_task_hist.merge(other.jobs_per_task_hist);
}

namespace {

// The wave loop, templated on the vote source so per-vote calls inline at
// the call site: run_binary's batched sources below are plain structs, so
// the hot path pays neither std::function dispatch per vote nor a raw
// uniform01 word per Bernoulli outcome. run_custom instantiates this with
// the type-erased VoteSource and behaves exactly as before.
template <typename Source>
MonteCarloResult run_loop(const StrategyFactory& factory, Source& source,
                          ResultValue correct_value,
                          const MonteCarloConfig& config) {
  SMARTRED_EXPECT(config.tasks > 0, "a run needs at least one task");
  SMARTRED_EXPECT(config.max_jobs_per_task > 0, "job cap must be positive");

  MonteCarloResult result;
  result.tasks = config.tasks;
  const rng::Stream master(config.seed);

  // Tasks run strictly one after another, so a single strategy instance
  // serves the whole run: reset() restores the freshly-made state between
  // tasks (a no-op for the stateless majority), replacing one allocation
  // per task with one per run. The votes buffer likewise never reallocates
  // once reserved to the cap.
  const auto strategy = factory.make();
  std::vector<Vote> votes;
  votes.reserve(static_cast<std::size_t>(config.max_jobs_per_task));
  obs::Recorder* const recorder = config.recorder;
  obs::TimeSeriesRecorder* const timeseries = config.timeseries;
  const std::uint64_t stride = std::max<std::uint64_t>(config.sample_every, 1);
  for (std::uint64_t task = 0; task < config.tasks; ++task) {
    rng::Stream task_rng = master.fork(task);
    strategy->reset();
    votes.clear();
    int waves = 0;
    bool aborted = false;
    Decision decision = Decision::dispatch(1);
    while (true) {
      decision = strategy->decide(votes);
      if (decision.done()) break;
      ++waves;
      if (recorder != nullptr) {
        recorder->record(obs::TraceEvent{
            .time = static_cast<double>(task),
            .task = task,
            .arg = decision.jobs,
            .wave = static_cast<std::uint32_t>(waves),
            .kind = obs::EventKind::kWaveDispatched,
        });
      }
      const int already = static_cast<int>(votes.size());
      const int wave =
          std::min(decision.jobs, config.max_jobs_per_task - already);
      for (int j = 0; j < wave; ++j) {
        votes.push_back(source(task, already + j, task_rng));
        if (recorder != nullptr) {
          const Vote& vote = votes.back();
          recorder->record(obs::TraceEvent{
              .time = static_cast<double>(task),
              .task = task,
              .arg = vote.value,
              .node = static_cast<std::uint32_t>(vote.node),
              .wave = static_cast<std::uint32_t>(waves),
              .kind = obs::EventKind::kVoteRecorded,
          });
        }
      }
      if (wave < decision.jobs) {
        aborted = true;  // cap reached mid-wave; give up on this task
        break;
      }
    }
    const auto jobs = static_cast<int>(votes.size());
    result.jobs_total += static_cast<std::uint64_t>(jobs);
    result.max_jobs_single_task = std::max(result.max_jobs_single_task, jobs);
    result.jobs_per_task.add(static_cast<double>(jobs));
    result.waves_per_task.add(static_cast<double>(waves));
    result.jobs_per_task_hist.add(static_cast<double>(jobs));
    if (aborted) {
      // An aborted task never accepts, hence counts incorrect.
      ++result.tasks_aborted;
      if (recorder != nullptr) {
        recorder->record(obs::TraceEvent{
            .time = static_cast<double>(task),
            .task = task,
            .arg = jobs,
            .wave = static_cast<std::uint32_t>(waves),
            .kind = obs::EventKind::kTaskAborted,
            .reason = static_cast<std::uint8_t>(
                Decision::Reason::kBudgetExhausted),
        });
      }
    } else {
      if (recorder != nullptr) {
        recorder->record(obs::TraceEvent{
            .time = static_cast<double>(task),
            .task = task,
            .arg = decision.value,
            .wave = static_cast<std::uint32_t>(waves),
            .kind = obs::EventKind::kDecision,
            .reason = static_cast<std::uint8_t>(decision.reason),
        });
      }
      if (decision.value == correct_value) ++result.tasks_correct;
    }
    // Sweep-progress sampling: cumulative aggregates every `stride` tasks
    // (and at the end). Pure reads of already-updated result fields, so
    // sampling can never perturb the run.
    if (timeseries != nullptr &&
        ((task + 1) % stride == 0 || task + 1 == config.tasks)) {
      const double done = static_cast<double>(task + 1);
      timeseries->sample("cost_factor", done,
                         static_cast<double>(result.jobs_total) / done);
      timeseries->sample(
          "reliability", done,
          static_cast<double>(result.tasks_correct) / done);
      timeseries->sample("tasks_aborted", done,
                         static_cast<double>(result.tasks_aborted));
    }
  }
  return result;
}

// Per-task cache of one bernoulli_mask64() draw: 64 job outcomes per ~2 raw
// words instead of one word each. The cache is keyed by task because each
// task forks a fresh stream — outcomes cached from the previous task's
// stream must never leak into the next. Draw *order* within a task differs
// from scalar bernoulli() calls (the distribution does not); the one-time
// pin refresh is documented in DESIGN §11.
struct BatchedOutcomes {
  double reliability;
  std::uint64_t mask = 0;
  int bits_left = 0;
  std::uint64_t current_task = ~std::uint64_t{0};

  bool next(std::uint64_t task, rng::Stream& rng) {
    if (task != current_task) {
      current_task = task;
      bits_left = 0;
    }
    if (bits_left == 0) {
      mask = rng.bernoulli_mask64(reliability);
      bits_left = 64;
    }
    const bool outcome = (mask & 1u) != 0;
    mask >>= 1;
    --bits_left;
    return outcome;
  }
};

struct BinarySource {
  BatchedOutcomes outcomes;

  Vote operator()(std::uint64_t task, int job_index, rng::Stream& rng) {
    // Node ids are synthetic: the pool is assumed large enough that a task
    // never sees the same node twice (paper §2.1, random assignment).
    return Vote{static_cast<NodeId>(job_index),
                outcomes.next(task, rng) ? kCorrectValue : kWrongValue};
  }
};

struct EncodedBinarySource {
  const TaskEncoder* encoder;
  BatchedOutcomes outcomes;

  Vote operator()(std::uint64_t task, int job_index, rng::Stream& rng) {
    const ResultValue correct = encoder->job_value(kCorrectValue, job_index);
    return Vote{static_cast<NodeId>(job_index),
                outcomes.next(task, rng) ? correct : correct ^ 1,
                encoder->piece_of(job_index)};
  }
};

}  // namespace

MonteCarloResult run_custom(const StrategyFactory& factory,
                            const VoteSource& source,
                            ResultValue correct_value,
                            const MonteCarloConfig& config) {
  return run_loop(factory, source, correct_value, config);
}

MonteCarloResult run_binary(const StrategyFactory& factory, double reliability,
                            const MonteCarloConfig& config) {
  SMARTRED_EXPECT(reliability >= 0.0 && reliability <= 1.0,
                  "reliability must be in [0, 1]");
  // An encoding factory splits the task into pieces: job_index is the
  // dispatch ordinal, the correct report is the ordinal's piece value, and
  // the colluding wrong value flips that piece's low bit (per-piece
  // collusion — the coded analogue of the binary worst case, since a
  // wrong-but-consistent *codeword* is what the decode-verify step exists
  // to catch).
  if (const TaskEncoder* const encoder = factory.encoder()) {
    EncodedBinarySource source{encoder, BatchedOutcomes{reliability}};
    return run_loop(factory, source, kCorrectValue, config);
  }
  BinarySource source{BatchedOutcomes{reliability}};
  return run_loop(factory, source, kCorrectValue, config);
}

}  // namespace smartred::redundancy
