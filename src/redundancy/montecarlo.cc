#include "redundancy/montecarlo.h"

#include <algorithm>
#include <vector>

#include "common/expect.h"

namespace smartred::redundancy {

double MonteCarloResult::cost_factor() const {
  SMARTRED_EXPECT(tasks > 0, "cost_factor() of an empty run");
  return static_cast<double>(jobs_total) / static_cast<double>(tasks);
}

double MonteCarloResult::reliability() const {
  SMARTRED_EXPECT(tasks > 0, "reliability() of an empty run");
  return static_cast<double>(tasks_correct) / static_cast<double>(tasks);
}

stats::Interval MonteCarloResult::reliability_interval(double z) const {
  return stats::wilson_interval(tasks_correct, tasks, z);
}

void MonteCarloResult::merge(const MonteCarloResult& other) {
  tasks += other.tasks;
  tasks_correct += other.tasks_correct;
  tasks_aborted += other.tasks_aborted;
  jobs_total += other.jobs_total;
  max_jobs_single_task =
      std::max(max_jobs_single_task, other.max_jobs_single_task);
  jobs_per_task.merge(other.jobs_per_task);
  waves_per_task.merge(other.waves_per_task);
  jobs_per_task_hist.merge(other.jobs_per_task_hist);
}

MonteCarloResult run_custom(const StrategyFactory& factory,
                            const VoteSource& source,
                            ResultValue correct_value,
                            const MonteCarloConfig& config) {
  SMARTRED_EXPECT(config.tasks > 0, "a run needs at least one task");
  SMARTRED_EXPECT(config.max_jobs_per_task > 0, "job cap must be positive");

  MonteCarloResult result;
  result.tasks = config.tasks;
  const rng::Stream master(config.seed);

  // Tasks run strictly one after another, so a single strategy instance
  // serves the whole run: reset() restores the freshly-made state between
  // tasks (a no-op for the stateless majority), replacing one allocation
  // per task with one per run. The votes buffer likewise never reallocates
  // once reserved to the cap.
  const auto strategy = factory.make();
  std::vector<Vote> votes;
  votes.reserve(static_cast<std::size_t>(config.max_jobs_per_task));
  obs::Recorder* const recorder = config.recorder;
  obs::TimeSeriesRecorder* const timeseries = config.timeseries;
  const std::uint64_t stride = std::max<std::uint64_t>(config.sample_every, 1);
  for (std::uint64_t task = 0; task < config.tasks; ++task) {
    rng::Stream task_rng = master.fork(task);
    strategy->reset();
    votes.clear();
    int waves = 0;
    bool aborted = false;
    Decision decision = Decision::dispatch(1);
    while (true) {
      decision = strategy->decide(votes);
      if (decision.done()) break;
      ++waves;
      if (recorder != nullptr) {
        recorder->record(obs::TraceEvent{
            .time = static_cast<double>(task),
            .task = task,
            .arg = decision.jobs,
            .wave = static_cast<std::uint32_t>(waves),
            .kind = obs::EventKind::kWaveDispatched,
        });
      }
      const int already = static_cast<int>(votes.size());
      const int wave =
          std::min(decision.jobs, config.max_jobs_per_task - already);
      for (int j = 0; j < wave; ++j) {
        votes.push_back(source(task, already + j, task_rng));
        if (recorder != nullptr) {
          const Vote& vote = votes.back();
          recorder->record(obs::TraceEvent{
              .time = static_cast<double>(task),
              .task = task,
              .arg = vote.value,
              .node = static_cast<std::uint32_t>(vote.node),
              .wave = static_cast<std::uint32_t>(waves),
              .kind = obs::EventKind::kVoteRecorded,
          });
        }
      }
      if (wave < decision.jobs) {
        aborted = true;  // cap reached mid-wave; give up on this task
        break;
      }
    }
    const auto jobs = static_cast<int>(votes.size());
    result.jobs_total += static_cast<std::uint64_t>(jobs);
    result.max_jobs_single_task = std::max(result.max_jobs_single_task, jobs);
    result.jobs_per_task.add(static_cast<double>(jobs));
    result.waves_per_task.add(static_cast<double>(waves));
    result.jobs_per_task_hist.add(static_cast<double>(jobs));
    if (aborted) {
      // An aborted task never accepts, hence counts incorrect.
      ++result.tasks_aborted;
      if (recorder != nullptr) {
        recorder->record(obs::TraceEvent{
            .time = static_cast<double>(task),
            .task = task,
            .arg = jobs,
            .wave = static_cast<std::uint32_t>(waves),
            .kind = obs::EventKind::kTaskAborted,
            .reason = static_cast<std::uint8_t>(
                Decision::Reason::kBudgetExhausted),
        });
      }
    } else {
      if (recorder != nullptr) {
        recorder->record(obs::TraceEvent{
            .time = static_cast<double>(task),
            .task = task,
            .arg = decision.value,
            .wave = static_cast<std::uint32_t>(waves),
            .kind = obs::EventKind::kDecision,
            .reason = static_cast<std::uint8_t>(decision.reason),
        });
      }
      if (decision.value == correct_value) ++result.tasks_correct;
    }
    // Sweep-progress sampling: cumulative aggregates every `stride` tasks
    // (and at the end). Pure reads of already-updated result fields, so
    // sampling can never perturb the run.
    if (timeseries != nullptr &&
        ((task + 1) % stride == 0 || task + 1 == config.tasks)) {
      const double done = static_cast<double>(task + 1);
      timeseries->sample("cost_factor", done,
                         static_cast<double>(result.jobs_total) / done);
      timeseries->sample(
          "reliability", done,
          static_cast<double>(result.tasks_correct) / done);
      timeseries->sample("tasks_aborted", done,
                         static_cast<double>(result.tasks_aborted));
    }
  }
  return result;
}

MonteCarloResult run_binary(const StrategyFactory& factory, double reliability,
                            const MonteCarloConfig& config) {
  SMARTRED_EXPECT(reliability >= 0.0 && reliability <= 1.0,
                  "reliability must be in [0, 1]");
  // An encoding factory splits the task into pieces: job_index is the
  // dispatch ordinal, the correct report is the ordinal's piece value, and
  // the colluding wrong value flips that piece's low bit (per-piece
  // collusion — the coded analogue of the binary worst case, since a
  // wrong-but-consistent *codeword* is what the decode-verify step exists
  // to catch).
  if (const TaskEncoder* const encoder = factory.encoder()) {
    const VoteSource source = [reliability, encoder](std::uint64_t /*task*/,
                                                     int job_index,
                                                     rng::Stream& rng) {
      const ResultValue correct = encoder->job_value(kCorrectValue, job_index);
      return Vote{static_cast<NodeId>(job_index),
                  rng.bernoulli(reliability) ? correct : correct ^ 1,
                  encoder->piece_of(job_index)};
    };
    return run_custom(factory, source, kCorrectValue, config);
  }
  const VoteSource source = [reliability](std::uint64_t /*task*/,
                                          int job_index, rng::Stream& rng) {
    // Node ids are synthetic: the pool is assumed large enough that a task
    // never sees the same node twice (paper §2.1, random assignment).
    return Vote{static_cast<NodeId>(job_index),
                rng.bernoulli(reliability) ? kCorrectValue : kWrongValue};
  };
  return run_custom(factory, source, kCorrectValue, config);
}

}  // namespace smartred::redundancy
