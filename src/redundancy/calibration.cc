#include "redundancy/calibration.h"

#include "common/expect.h"
#include "redundancy/analysis.h"

namespace smartred::redundancy::calibration {

int min_k_for_reliability(double r, double target, int k_max) {
  SMARTRED_EXPECT(r > 0.5 && r < 1.0, "r must be in (0.5, 1)");
  SMARTRED_EXPECT(target >= 0.5 && target < 1.0, "target must be in [0.5, 1)");
  for (int k = 1; k <= k_max; k += 2) {
    if (analysis::traditional_reliability(k, r) >= target) return k;
  }
  SMARTRED_EXPECT(false, "no odd k <= k_max reaches the target reliability");
  return -1;  // unreachable
}

int min_d_for_reliability(double r, double target) {
  return analysis::margin_for_confidence(r, target);
}

MatchedCosts costs_for_target(double r, double target) {
  MatchedCosts out;
  out.k = min_k_for_reliability(r, target);
  out.d = min_d_for_reliability(r, target);
  out.traditional = analysis::traditional_cost(out.k);
  out.progressive = analysis::progressive_cost(out.k, r);
  out.iterative = analysis::iterative_cost(out.d, r);
  out.traditional_reliability = analysis::traditional_reliability(out.k, r);
  out.iterative_reliability = analysis::iterative_reliability(out.d, r);
  return out;
}

}  // namespace smartred::redundancy::calibration
