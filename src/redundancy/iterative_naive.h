// The naïve ("complex") iterative-redundancy algorithm, paper §3.3.
//
// This is the form of the algorithm *before* the simplifying insight of
// Theorems 1 and 2: it takes the node reliability r and the desired
// confidence threshold R as inputs, computes the Bayesian confidence
// q(r, a, b) in the current majority, and — when below threshold — searches
// for the minimum number of additional unanimous results d(r, R, b) that
// would restore confidence R.
//
// It exists in this library for two reasons:
//  1. It documents the derivation of the contribution.
//  2. The property test suite proves, decision by decision, that it deploys
//     exactly the same number of jobs as the simple margin-d algorithm
//     (the paper's claim: "this simplified algorithm deploys the same number
//     of redundant jobs in every situation").
//
// Production systems should use IterativeRedundancy instead, which needs
// neither r nor any probability computation.
#pragma once

#include "redundancy/strategy.h"

namespace smartred::redundancy {

class IterativeNaive final : public RedundancyStrategy {
 public:
  /// Requires r in (0.5, 1) — the Bayesian update is only meaningful when a
  /// node is right more often than wrong — and R in [0.5, 1).
  IterativeNaive(double reliability, double confidence_threshold);

  Decision decide(std::span<const Vote> votes) override;

  /// The confidence q(r, a, b) that the majority of an (a, b) split is
  /// correct (paper §3.3): r^a (1−r)^b / (r^a (1−r)^b + (1−r)^a r^b).
  [[nodiscard]] double confidence(int majority, int minority) const;

  /// d(r, R, b): the minimum majority count a such that
  /// q(r, a, b) >= R, found by testing consecutive values of a (one of the
  /// two methods the paper names). Requires b >= 0.
  [[nodiscard]] int required_majority(int minority) const;

 private:
  double r_;
  double threshold_;
};

class IterativeNaiveFactory final : public StrategyFactory {
 public:
  IterativeNaiveFactory(double reliability, double confidence_threshold);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  /// Pure function of the vote tally: one instance serves any task mix.
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] std::string name() const override;

 private:
  double r_;
  double threshold_;
};

}  // namespace smartred::redundancy
