// Coded redundancy: an (n, k) MDS-style strategy family beyond
// vote-replication (ROADMAP item 3).
//
// The paper's three techniques replicate whole tasks and vote. Coded
// computation ("Leveraging Coding Techniques for Speeding up Distributed
// Computing"; "Diversity/Parallelism Trade-off in Distributed Systems with
// Redundancy" — PAPERS.md) instead encodes a task into n pieces such that
// any k of them reconstruct the answer:
//
//  * The task's 32-bit result is expanded into k data words
//    d_0 = value, d_i = mix32(value, i) — a keyed self-check relation the
//    decoder re-derives, so a reconstruction from corrupted shares cannot
//    silently pass.
//  * The data words are the values of a degree-(k-1) polynomial over
//    GF(2^8) (byte-wise across the word) at x = 0..k-1; piece i is the
//    polynomial evaluated at x = i. Pieces 0..k-1 are the data words
//    themselves (systematic), pieces k..n-1 are Reed–Solomon-style parity.
//    Any k distinct pieces Lagrange-interpolate the full codeword.
//
// The decision engine composes the code with the paper's tally machinery
// (decode-verify *after* per-piece voting, never instead of it):
//
//  * Jobs are dispatched in waves of g — the diversity/parallelism knob.
//    g = n runs every piece at once (all parallelism: accept on the k+v
//    fastest of n, which is where the straggler win over IR comes from);
//    g = 1 trickles one piece at a time (all diversity: minimal dispatch,
//    maximal sequential latency). The j-th job overall computes piece
//    j mod n, so repeated waves re-vote earlier pieces.
//  * Each piece runs its own VoteTally; a piece is *settled* once its
//    margin (leader minus runner-up) reaches d — the iterative technique's
//    margin rule applied per piece.
//  * With at least k+v settled pieces the engine decodes from k of them,
//    re-derives the mix32 self-check, and counts how many settled leaders
//    agree with the reconstructed codeword. The codeword is accepted only
//    when >= k+v settled pieces agree — so a wrong accept needs at least
//    v+1 corrupted-and-settled pieces all consistent with one alternative
//    valid codeword, on top of defeating the self-check. On rejection the
//    engine excludes the least-trusted share (smallest margin, largest
//    index on ties) and retries deterministically until fewer than k
//    candidates remain, then asks for another wave.
//
// coded:n=1,k=1,g=1,v=0,d=D degenerates to exactly iterative:d=D (one
// piece, margin rule, no parity) — the closed-form bridge the differential
// tests cross-check against analysis.h.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "redundancy/strategy.h"
#include "redundancy/types.h"

namespace smartred::redundancy {

/// Hard cap on n: keeps the decoder's scratch on the stack and the
/// per-piece x-coordinates within GF(2^8). Far above any sane config —
/// the diversity/parallelism sweet spots live at n <= 16.
inline constexpr int kMaxCodedPieces = 64;

/// The keyed expansion of a task value into its i-th data word
/// (i in [0, k)): word 0 is the value itself, later words are a splitmix-
/// style hash of (value, i). Decoders re-derive words 1..k-1 from the
/// reconstructed word 0 — the self-check that fails closed on corruption.
[[nodiscard]] constexpr std::uint32_t coded_mix32(std::uint32_t value,
                                                  std::uint32_t index) {
  if (index == 0) return value;
  std::uint64_t z = (static_cast<std::uint64_t>(value) << 32) ^
                    (0x9E3779B97F4A7C15ULL * (index + 1));
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z ^ (z >> 32));
}

/// Systematic Reed–Solomon-lite codec over GF(2^8), byte-wise across
/// 32-bit result words. Immutable after construction; encode/decode touch
/// only stack scratch (no allocation — the BM_CodedEncodeDecode perf gate
/// holds this).
class Codec {
 public:
  /// Requires 1 <= k <= n <= kMaxCodedPieces.
  Codec(int n, int k);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }

  /// The value a correct job reports for piece `index` (in [0, n)) of a
  /// task whose true result is `value`.
  [[nodiscard]] ResultValue piece(ResultValue value, int index) const;

  /// Writes the full n-piece codeword of `value` into out[0..n).
  void encode(ResultValue value, std::span<ResultValue> out) const;

  /// One reconstruction input: a piece index in [0, n) and its value.
  struct Share {
    int index = 0;
    ResultValue value = 0;
  };

  /// A reconstruction attempt from exactly k shares.
  struct Decoded {
    ResultValue value = 0;  ///< reconstructed task result (data word 0)
    /// The full codeword implied by the shares; entries [0, n) are valid.
    std::array<ResultValue, kMaxCodedPieces> codeword{};
    /// True when data words 1..k-1 match coded_mix32(value, i) — the
    /// fail-closed self-check. Always true for k == 1 (no relation to
    /// check); callers must then rely on cross-piece agreement.
    bool self_consistent = false;
  };

  /// Reconstructs the codeword from exactly k shares with distinct indices
  /// in [0, n). Bit-identical output for any share order.
  [[nodiscard]] Decoded decode(std::span<const Share> shares) const;

 private:
  int n_;
  int k_;
};

/// Configuration of one coded strategy instance.
struct CodedConfig {
  int n = 6;  ///< pieces per codeword, in [1, kMaxCodedPieces]
  int k = 4;  ///< pieces needed to reconstruct, in [1, n]
  /// Wave size — encoded pieces dispatched per node group. Must divide n:
  /// waves then tile the piece ring evenly, so every full cycle of n/g
  /// waves votes each piece exactly once.
  int g = 6;
  /// Per-piece settle margin (iterative redundancy's d applied piece-wise);
  /// >= 1 so a settled piece always has a unique, arrival-order-independent
  /// leader.
  int d = 1;
  /// Verification overhead: a decode is accepted only when k+v settled
  /// pieces agree with the reconstruction. Defaults to min(1, n-k); v = 0
  /// (only possible choice when n == k... or explicitly requested) accepts
  /// on bare reconstruction. Requires k+v <= n.
  int v = -1;  ///< -1 = default min(1, n-k)

  /// Resolves the v = -1 default and validates; throws via SMARTRED_EXPECT
  /// on violation. Registry::make performs the same checks with SpecError.
  [[nodiscard]] CodedConfig normalized() const;
};

/// Minimum dispatched jobs before a coded task *can* accept: enough full
/// waves of g that k+v pieces have d votes each under the round-robin
/// piece schedule. With r = 1 this is exactly the measured jobs-per-task
/// (every task accepts at the first opportunity) — the closed-form anchor
/// of the differential sweep.
[[nodiscard]] int coded_min_jobs(const CodedConfig& config);

/// Lower bound on the probability that a task accepts at coded_min_jobs
/// dispatched jobs when every vote is independently correct with
/// probability r: all of the first coded_min_jobs votes correct suffices.
[[nodiscard]] double coded_first_pass_reliability(const CodedConfig& config,
                                                  double r);

/// The per-piece-voting decision engine described in the header comment.
/// Stateless across decide() calls (a pure function of the votes), so one
/// instance serves any number of in-flight tasks.
class CodedRedundancy final : public RedundancyStrategy {
 public:
  explicit CodedRedundancy(const CodedConfig& config);

  Decision decide(std::span<const Vote> votes) override;

 private:
  CodedConfig config_;  ///< normalized: v resolved
  Codec codec_;
};

class CodedFactory final : public StrategyFactory {
 public:
  explicit CodedFactory(const CodedConfig& config);

  [[nodiscard]] std::unique_ptr<RedundancyStrategy> make() const override;
  [[nodiscard]] bool stateless() const override { return true; }
  [[nodiscard]] const TaskEncoder* encoder() const override {
    return &encoder_;
  }
  [[nodiscard]] bool eager() const override { return true; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const CodedConfig& config() const { return config_; }

 private:
  /// Round-robin piece schedule over the codec: ordinal j -> piece j mod n.
  class Encoder final : public TaskEncoder {
   public:
    explicit Encoder(const Codec& codec) : codec_(&codec) {}
    [[nodiscard]] int pieces() const override { return codec_->n(); }
    [[nodiscard]] int piece_of(int ordinal) const override;
    [[nodiscard]] ResultValue job_value(ResultValue task_value,
                                        int ordinal) const override;

   private:
    const Codec* codec_;
  };

  CodedConfig config_;  ///< normalized: v resolved
  Codec codec_;
  Encoder encoder_;
};

}  // namespace smartred::redundancy
