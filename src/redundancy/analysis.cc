#include "redundancy/analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/binomial.h"
#include "common/expect.h"

namespace smartred::redundancy::analysis {
namespace {

void check_k(int k) {
  SMARTRED_EXPECT(k >= 1 && k % 2 == 1, "k must be odd and >= 1");
}

void check_r_open(double r) {
  SMARTRED_EXPECT(r > 0.0 && r < 1.0, "r must be in (0, 1)");
}

void check_r_useful(double r) {
  SMARTRED_EXPECT(r > 0.5 && r < 1.0, "r must be in (0.5, 1)");
}

/// E[max of w i.i.d. U(0.5, 1.5)] = 0.5 + w/(w+1).
double expected_wave_duration(int wave_size) {
  return 0.5 + static_cast<double>(wave_size) /
                   (static_cast<double>(wave_size) + 1.0);
}

/// Flattened triangular table of binom::pmf(w, x, p) for w in [0, w_max],
/// x in [0, w]. The wave-process loops hit the same tiny (w, x) domain on
/// every wave and every frontier state; hoisting the rows out replaces
/// three lgamma calls plus two logs per inner term with one load. Entries
/// are the pmf outputs themselves, so results stay bit-identical.
class PmfTable {
 public:
  PmfTable(int w_max, double p) : w_max_(w_max) {
    rows_.reserve(static_cast<std::size_t>((w_max + 1) * (w_max + 2)) / 2);
    for (int w = 0; w <= w_max; ++w) {
      for (int x = 0; x <= w; ++x) {
        rows_.push_back(binom::pmf(static_cast<std::uint64_t>(w),
                                   static_cast<std::uint64_t>(x), p));
      }
    }
  }

  [[nodiscard]] double operator()(int w, int x) const {
    SMARTRED_EXPECT(w >= 0 && w <= w_max_ && x >= 0 && x <= w,
                    "pmf table lookup out of range");
    return rows_[static_cast<std::size_t>(w * (w + 1) / 2 + x)];
  }

 private:
  int w_max_;
  std::vector<double> rows_;
};

/// Result of evolving a technique's wave process to (near-)absorption.
struct WaveProcess {
  std::vector<double> wave_distribution;  ///< P[exactly w waves] at index w-1
  double expected_jobs = 0.0;
  double expected_response = 0.0;  ///< sequential waves, parallel jobs
};

/// Evolves the iterative-redundancy wave process: state is the signed vote
/// margin s (correct minus wrong), |s| < d; each wave dispatches d − |s|
/// jobs and the margin moves by 2X − w with X ~ Binomial(w, r). Absorption
/// happens exactly at |s| = d. Also usable per *job* by capping wave size at
/// 1 — that degenerate mode reproduces Equation (5)'s one-job random walk.
WaveProcess evolve_iterative(int d, double r, double epsilon,
                             bool single_job_waves) {
  SMARTRED_EXPECT(d >= 1, "margin d must be >= 1");
  SMARTRED_EXPECT(r >= 0.0 && r <= 1.0, "r must be in [0, 1]");
  SMARTRED_EXPECT(epsilon > 0.0, "epsilon must be positive");

  // mass[s + d] = probability of being unabsorbed with margin s.
  const std::size_t width = static_cast<std::size_t>(2 * d + 1);
  std::vector<double> mass(width, 0.0);
  std::vector<double> next(width, 0.0);
  mass[static_cast<std::size_t>(d)] = 1.0;  // margin 0
  double alive = 1.0;

  WaveProcess out;
  const PmfTable pmf(single_job_waves ? 1 : d, r);
  // Residual mass decays geometrically, so this loop terminates; the bound
  // is a safety net against pathological parameters.
  const int max_waves = 20'000'000 / (2 * d + 1) + 64;
  for (int wave = 1; wave <= max_waves && alive > epsilon; ++wave) {
    std::fill(next.begin(), next.end(), 0.0);
    double absorbed_this_wave = 0.0;
    double jobs_this_wave = 0.0;
    double response_this_wave = 0.0;
    for (int s = -d + 1; s <= d - 1; ++s) {
      const double m = mass[static_cast<std::size_t>(s + d)];
      if (m == 0.0) continue;
      const int full_wave = d - std::abs(s);
      const int w = single_job_waves ? 1 : full_wave;
      jobs_this_wave += m * static_cast<double>(w);
      response_this_wave += m * expected_wave_duration(w);
      for (int x = 0; x <= w; ++x) {
        const double p = pmf(w, x);
        if (p == 0.0) continue;
        const int s_new = s + 2 * x - w;
        if (std::abs(s_new) >= d) {
          absorbed_this_wave += m * p;
        } else {
          next[static_cast<std::size_t>(s_new + d)] += m * p;
        }
      }
    }
    mass.swap(next);
    alive -= absorbed_this_wave;
    out.expected_jobs += jobs_this_wave;
    out.expected_response += response_this_wave;
    out.wave_distribution.push_back(absorbed_this_wave);
  }
  SMARTRED_ENSURE(alive <= epsilon * 16,
                  "iterative wave process failed to converge");
  return out;
}

/// Evolves the progressive wave process: state is the (correct, wrong) vote
/// pair, both below the quorum; each wave dispatches quorum − max(a, b).
WaveProcess evolve_progressive(int k, double r, double epsilon) {
  check_k(k);
  SMARTRED_EXPECT(r >= 0.0 && r <= 1.0, "r must be in [0, 1]");
  const int quorum = (k + 1) / 2;

  struct State {
    int correct;
    int wrong;
    double mass;
  };
  std::vector<State> states{{0, 0, 1.0}};

  WaveProcess out;
  const PmfTable pmf(quorum, r);
  (void)epsilon;  // the process is bounded; no truncation needed
  // The binary model guarantees absorption within quorum waves; +2 margin.
  for (int wave = 1; wave <= quorum + 2 && !states.empty(); ++wave) {
    std::vector<State> next;
    double absorbed_this_wave = 0.0;
    double jobs_this_wave = 0.0;
    double response_this_wave = 0.0;
    for (const State& state : states) {
      const int w = quorum - std::max(state.correct, state.wrong);
      SMARTRED_ENSURE(w >= 1, "unabsorbed progressive state needs jobs");
      jobs_this_wave += state.mass * static_cast<double>(w);
      response_this_wave += state.mass * expected_wave_duration(w);
      for (int x = 0; x <= w; ++x) {
        const double p = pmf(w, x);
        if (p == 0.0) continue;
        const int a = state.correct + x;
        const int b = state.wrong + (w - x);
        const double m = state.mass * p;
        if (std::max(a, b) >= quorum) {
          absorbed_this_wave += m;
        } else {
          // Merge duplicate (a, b) states to keep the frontier small.
          auto match = std::find_if(next.begin(), next.end(),
                                    [a, b](const State& other) {
                                      return other.correct == a &&
                                             other.wrong == b;
                                    });
          if (match == next.end()) {
            next.push_back(State{a, b, m});
          } else {
            match->mass += m;
          }
        }
      }
    }
    states = std::move(next);
    out.expected_jobs += jobs_this_wave;
    out.expected_response += response_this_wave;
    out.wave_distribution.push_back(absorbed_this_wave);
  }
  SMARTRED_ENSURE(states.empty(), "progressive wave process must absorb");
  return out;
}

}  // namespace

double confidence(double r, int majority, int minority) {
  check_r_open(r);
  SMARTRED_EXPECT(majority >= 0 && minority >= 0, "counts are non-negative");
  return confidence_at_margin(r, static_cast<double>(majority - minority));
}

double confidence_at_margin(double r, double margin) {
  check_r_open(r);
  // 1 / (1 + rho^margin), rho = (1−r)/r, evaluated via exp/log for
  // stability at large margins.
  const double log_rho = std::log1p(-r) - std::log(r);
  return 1.0 / (1.0 + std::exp(margin * log_rho));
}

int margin_for_confidence(double r, double target) {
  check_r_useful(r);
  SMARTRED_EXPECT(target >= 0.5 && target < 1.0, "target must be in [0.5, 1)");
  // The threshold is met up to 1e-12 slack, matching IterativeNaive: when
  // the target coincides exactly with an achievable confidence, differently
  // rounded evaluations of q must not disagree about the minimal margin.
  constexpr double kSlack = 1e-12;
  const double exact = continuous_margin(r, target);
  int d = std::max(1, static_cast<int>(std::ceil(exact - 1e-9)));
  // Guard against floating-point edge cases on either side of the ceiling.
  while (confidence_at_margin(r, d) < target - kSlack) ++d;
  while (d > 1 && confidence_at_margin(r, d - 1) >= target - kSlack) --d;
  return d;
}

double continuous_margin(double r, double target) {
  check_r_useful(r);
  SMARTRED_EXPECT(target >= 0.5 && target < 1.0, "target must be in [0.5, 1)");
  // Solve r^d / (r^d + (1−r)^d) = R  =>  d = ln(R/(1−R)) / ln(r/(1−r)).
  return std::log(target / (1.0 - target)) / (std::log(r) - std::log1p(-r));
}

double traditional_cost(int k) {
  check_k(k);
  return static_cast<double>(k);
}

double traditional_reliability(int k, double r) {
  check_k(k);
  SMARTRED_EXPECT(r >= 0.0 && r <= 1.0, "r must be in [0, 1]");
  // Equation (2): at most (k−1)/2 of the k jobs fail.
  return binom::cdf(static_cast<std::uint64_t>(k),
                    static_cast<std::uint64_t>((k - 1) / 2), 1.0 - r);
}

double traditional_failure(int k, double r) {
  check_k(k);
  SMARTRED_EXPECT(r >= 0.0 && r <= 1.0, "r must be in [0, 1]");
  // P[at least (k+1)/2 of the k jobs fail], summed over the small tail.
  return binom::upper_tail(static_cast<std::uint64_t>(k),
                           static_cast<std::uint64_t>((k + 1) / 2), 1.0 - r);
}

double progressive_cost(int k, double r) {
  check_k(k);
  SMARTRED_EXPECT(r >= 0.0 && r <= 1.0, "r must be in [0, 1]");
  // Equation (3): the quorum is always dispatched; each further job i is
  // dispatched iff the first i−1 results contain no consensus, i.e. both the
  // correct count a and the wrong count (i−1−a) are below the quorum.
  const int quorum = (k + 1) / 2;
  double cost = static_cast<double>(quorum);
  for (int n = quorum; n <= k - 1; ++n) {
    double no_consensus = 0.0;
    const int a_lo = std::max(0, n - quorum + 1);
    const int a_hi = std::min(n, quorum - 1);
    for (int a = a_lo; a <= a_hi; ++a) {
      no_consensus += binom::pmf(static_cast<std::uint64_t>(n),
                                 static_cast<std::uint64_t>(a), r);
    }
    cost += no_consensus;
  }
  return cost;
}

double progressive_reliability(int k, double r) {
  // Equation (4): identical to traditional redundancy.
  return traditional_reliability(k, r);
}

double iterative_reliability(int d, double r) {
  SMARTRED_EXPECT(d >= 1, "margin d must be >= 1");
  check_r_open(r);
  return confidence_at_margin(r, static_cast<double>(d));
}

double iterative_failure(int d, double r) {
  SMARTRED_EXPECT(d >= 1, "margin d must be >= 1");
  check_r_open(r);
  // (1−r)^d / (r^d + (1−r)^d) = 1 / (1 + (r/(1−r))^d): the reciprocal of
  // the reliability expression, stable when the failure odds are tiny.
  const double log_inv_rho = std::log(r) - std::log1p(-r);
  return 1.0 / (1.0 + std::exp(static_cast<double>(d) * log_inv_rho));
}

double iterative_cost(int d, double r, double epsilon) {
  return evolve_iterative(d, r, epsilon, /*single_job_waves=*/false)
      .expected_jobs;
}

double iterative_cost_approx(int d, double r) {
  SMARTRED_EXPECT(d >= 1, "margin d must be >= 1");
  SMARTRED_EXPECT(r > 0.5, "approximation requires r > 0.5");
  return static_cast<double>(d) / (2.0 * r - 1.0);
}

double iterative_cost_continuous(double d_real, double r, double epsilon) {
  SMARTRED_EXPECT(d_real >= 1.0, "margin must be >= 1");
  const int lo = static_cast<int>(std::floor(d_real));
  const int hi = static_cast<int>(std::ceil(d_real));
  const double cost_lo = iterative_cost(lo, r, epsilon);
  if (lo == hi) return cost_lo;
  const double cost_hi = iterative_cost(hi, r, epsilon);
  const double t = d_real - static_cast<double>(lo);
  return cost_lo + t * (cost_hi - cost_lo);
}

std::vector<double> iterative_job_count_distribution(int d, double r,
                                                     double epsilon) {
  // With single-job waves, "wave" w means absorption at job w; absorption
  // can only occur at jobs of the form d + 2b, so re-index by b.
  const WaveProcess process =
      evolve_iterative(d, r, epsilon, /*single_job_waves=*/true);
  std::vector<double> by_b;
  for (std::size_t jobs = 1; jobs <= process.wave_distribution.size();
       ++jobs) {
    const double p = process.wave_distribution[jobs - 1];
    const auto j = static_cast<int>(jobs);
    if (j >= d && (j - d) % 2 == 0) {
      by_b.push_back(p);
    } else {
      SMARTRED_ENSURE(p == 0.0, "absorption off the d + 2b lattice");
    }
  }
  return by_b;
}

double iterative_cost_variance(int d, double r, double epsilon) {
  const std::vector<double> dist = iterative_job_count_distribution(d, r,
                                                                    epsilon);
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t b = 0; b < dist.size(); ++b) {
    const double jobs = static_cast<double>(d) + 2.0 * static_cast<double>(b);
    mean += dist[b] * jobs;
    second += dist[b] * jobs * jobs;
  }
  return second - mean * mean;
}

int iterative_job_count_quantile(int d, double r, double q, double epsilon) {
  SMARTRED_EXPECT(q >= 0.0 && q < 1.0, "quantile must be in [0, 1)");
  const std::vector<double> dist = iterative_job_count_distribution(d, r,
                                                                    epsilon);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < dist.size(); ++b) {
    cumulative += dist[b];
    if (cumulative >= q) return d + 2 * static_cast<int>(b);
  }
  // q falls in the truncated tail; return the last tabulated point.
  return d + 2 * (static_cast<int>(dist.size()) - 1);
}

std::vector<double> progressive_job_count_distribution(int k, double r) {
  check_k(k);
  SMARTRED_EXPECT(r >= 0.0 && r <= 1.0, "r must be in [0, 1]");
  // P[total = n] = P[no consensus after n−1 votes] − P[no consensus after
  // n votes] for n in [quorum, k]; the wave top-up policy reaches consensus
  // exactly at the first per-job consensus point.
  const int quorum = (k + 1) / 2;
  auto no_consensus = [&](int n) {
    if (n < quorum) return 1.0;
    double total = 0.0;
    const int a_lo = std::max(0, n - quorum + 1);
    const int a_hi = std::min(n, quorum - 1);
    for (int a = a_lo; a <= a_hi; ++a) {
      total += binom::pmf(static_cast<std::uint64_t>(n),
                          static_cast<std::uint64_t>(a), r);
    }
    return total;
  };
  std::vector<double> dist;
  dist.reserve(static_cast<std::size_t>(k - quorum + 1));
  for (int n = quorum; n <= k; ++n) {
    dist.push_back(no_consensus(n - 1) - no_consensus(n));
  }
  return dist;
}

double progressive_cost_variance(int k, double r) {
  const std::vector<double> dist = progressive_job_count_distribution(k, r);
  const int quorum = (k + 1) / 2;
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    const double jobs = static_cast<double>(quorum) + static_cast<double>(i);
    mean += dist[i] * jobs;
    second += dist[i] * jobs * jobs;
  }
  return second - mean * mean;
}

std::vector<double> traditional_wave_distribution() { return {1.0}; }

std::vector<double> progressive_wave_distribution(int k, double r,
                                                  double epsilon) {
  return evolve_progressive(k, r, epsilon).wave_distribution;
}

std::vector<double> iterative_wave_distribution(int d, double r,
                                                double epsilon) {
  return evolve_iterative(d, r, epsilon, /*single_job_waves=*/false)
      .wave_distribution;
}

double expected_waves(const std::vector<double>& distribution) {
  double mean = 0.0;
  for (std::size_t w = 0; w < distribution.size(); ++w) {
    mean += static_cast<double>(w + 1) * distribution[w];
  }
  return mean;
}

double expected_response_traditional(int k) {
  check_k(k);
  return expected_wave_duration(k);
}

double expected_response_progressive(int k, double r, double epsilon) {
  return evolve_progressive(k, r, epsilon).expected_response;
}

double expected_response_iterative(int d, double r, double epsilon) {
  return evolve_iterative(d, r, epsilon, /*single_job_waves=*/false)
      .expected_response;
}

double progressive_improvement(int k, double r) {
  return traditional_cost(k) / progressive_cost(k, r);
}

double iterative_improvement(int k, double r) {
  check_r_useful(r);
  // Work on the failure side: 1 − R_TR stays meaningful in double precision
  // even when R_TR rounds to 1. The matched margin solves
  // (1−r)^d / (r^d + (1−r)^d) = failure, i.e.
  // d* = ln((1−F)/F) / ln(r/(1−r)).
  const double failure = traditional_failure(k, r);
  SMARTRED_EXPECT(failure > 0.0 && failure <= 0.5,
                  "matched failure must be in (0, 0.5]");
  const double d_exact = std::log((1.0 - failure) / failure) /
                         (std::log(r) - std::log1p(-r));
  // Clamped to the technique's minimum of d = 1 (where iterative redundancy
  // can only overshoot the target, making the comparison conservative).
  const double d_star = std::max(1.0, d_exact);
  return traditional_cost(k) / iterative_cost_continuous(d_star, r);
}

}  // namespace smartred::redundancy::analysis
