// Vocabulary types shared by the redundancy strategies and the execution
// substrates (Monte-Carlo driver, DCA simulation, volunteer-computing
// deployment).
//
// Terminology follows the paper (§2.1): a *computation* is split into
// *tasks*; each task is executed as one or more *jobs* on distinct nodes;
// each job reports a ResultValue, and a redundancy strategy decides when
// enough jobs agree.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.h"

namespace smartred::redundancy {

/// The value a job reports. Under the paper's Byzantine threat model the
/// worst case is binary (§2.2): every failing node colludes to report the
/// same wrong value. Non-binary results (§5.3) use the same type with a
/// larger value range; substrates map domain results (e.g. 3-SAT outcomes)
/// onto equivalence-class representatives of this type.
using ResultValue = std::int32_t;

/// Identifies a node in the pool. Strategies that track per-node state
/// (credibility-based fault tolerance, adaptive replication) key on this;
/// the paper's three core techniques ignore it.
using NodeId = std::uint32_t;

/// One returned job result, attributed to the node that produced it.
struct Vote {
  NodeId node = 0;
  ResultValue value = 0;
  /// Which encoded piece of the task this vote answers. Plain replication
  /// strategies leave it 0 (every job computes the whole task); coded
  /// strategies read it to tally per-piece. Assigned by the substrate from
  /// the job's dispatch ordinal — a Byzantine node can corrupt `value` but
  /// never lie about which piece it was asked for.
  std::int32_t piece = 0;

  friend bool operator==(const Vote&, const Vote&) = default;
};

/// Aggregated counts of the votes received so far for one task.
///
/// Under the binary worst case there are at most two distinct values, but
/// the tally supports arbitrarily many so the non-binary relaxation of §5.3
/// (plurality voting) runs through the same code path. Counts live in a
/// small inline buffer with a heap spill only past kInlineEntries distinct
/// values: real tallies hold a handful of distinct values, where a flat
/// scan beats any map and the inline common case never allocates.
class VoteTally {
 public:
  VoteTally() = default;

  /// Builds a tally from an ordered vote sequence.
  explicit VoteTally(std::span<const Vote> votes);

  /// Records one more vote for `value`.
  void add(ResultValue value);

  /// Total number of votes recorded.
  [[nodiscard]] int total() const { return total_; }

  /// Number of distinct values seen.
  [[nodiscard]] std::size_t distinct() const { return distinct_; }

  /// Votes recorded for `value` (0 if never seen).
  [[nodiscard]] int count(ResultValue value) const;

  /// The value with the most votes. Ties break toward the value seen first,
  /// which keeps simulation runs deterministic. Requires total() > 0.
  [[nodiscard]] ResultValue leader() const;

  /// Vote count of the leader. Requires total() > 0.
  [[nodiscard]] int leader_count() const;

  /// Vote count of the runner-up (0 when only one value has been seen).
  /// Requires total() > 0.
  [[nodiscard]] int runner_up_count() const;

  /// leader_count() − runner_up_count(): the margin the iterative
  /// technique drives to `d`. Requires total() > 0.
  [[nodiscard]] int margin() const;

  /// Sum of votes not cast for the leader. Requires total() > 0.
  [[nodiscard]] int minority_total() const { return total_ - leader_count(); }

 private:
  struct Entry {
    ResultValue value;
    int count;
  };

  /// Inline capacity sized for the binary worst case (2 distinct values)
  /// with headroom; tallies only touch the heap past this, which in
  /// practice means never outside the §5.3 non-binary relaxation. The
  /// decide() hot path builds a tally per consult, so this matters.
  static constexpr std::size_t kInlineEntries = 4;

  [[nodiscard]] bool spilled() const { return !spill_.empty(); }
  [[nodiscard]] std::span<const Entry> entries() const {
    return spilled() ? std::span<const Entry>(spill_)
                     : std::span<const Entry>(inline_.data(), distinct_);
  }
  [[nodiscard]] const Entry& leader_entry() const;

  std::array<Entry, kInlineEntries> inline_{};
  std::vector<Entry> spill_;
  std::size_t distinct_ = 0;
  int total_ = 0;
};

}  // namespace smartred::redundancy
