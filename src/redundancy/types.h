// Vocabulary types shared by the redundancy strategies and the execution
// substrates (Monte-Carlo driver, DCA simulation, volunteer-computing
// deployment).
//
// Terminology follows the paper (§2.1): a *computation* is split into
// *tasks*; each task is executed as one or more *jobs* on distinct nodes;
// each job reports a ResultValue, and a redundancy strategy decides when
// enough jobs agree.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.h"

namespace smartred::redundancy {

/// The value a job reports. Under the paper's Byzantine threat model the
/// worst case is binary (§2.2): every failing node colludes to report the
/// same wrong value. Non-binary results (§5.3) use the same type with a
/// larger value range; substrates map domain results (e.g. 3-SAT outcomes)
/// onto equivalence-class representatives of this type.
using ResultValue = std::int32_t;

/// Identifies a node in the pool. Strategies that track per-node state
/// (credibility-based fault tolerance, adaptive replication) key on this;
/// the paper's three core techniques ignore it.
using NodeId = std::uint32_t;

/// One returned job result, attributed to the node that produced it.
struct Vote {
  NodeId node = 0;
  ResultValue value = 0;
  /// Which encoded piece of the task this vote answers. Plain replication
  /// strategies leave it 0 (every job computes the whole task); coded
  /// strategies read it to tally per-piece. Assigned by the substrate from
  /// the job's dispatch ordinal — a Byzantine node can corrupt `value` but
  /// never lie about which piece it was asked for.
  std::int32_t piece = 0;

  friend bool operator==(const Vote&, const Vote&) = default;
};

/// Aggregated counts of the votes received so far for one task.
///
/// Under the binary worst case there are at most two distinct values, but
/// the tally supports arbitrarily many so the non-binary relaxation of §5.3
/// (plurality voting) runs through the same code path.
///
/// Storage is structure-of-arrays: the distinct values and their counts
/// live in two parallel arrays (small inline buffers with a heap spill only
/// past kInlineEntries distinct values — in practice never outside §5.3).
/// The split layout is what makes the bulk fold() path vectorizable: a wave
/// of votes is de-interleaved into a dense value buffer once, then each
/// distinct value takes one branch-free equality-count pass over it, so
/// strategies fold a whole wave per consult instead of walking an
/// array-of-structs entry list per vote.
class VoteTally {
 public:
  VoteTally() = default;

  /// Builds a tally from an ordered vote sequence (bulk fold() path).
  explicit VoteTally(std::span<const Vote> votes) { fold(votes); }

  /// Records a whole wave of votes at once. Equivalent to add(v.value) for
  /// each vote in order — first-seen tie-break order included — but counts
  /// with dense branch-free passes instead of a per-vote entry scan.
  void fold(std::span<const Vote> votes);

  /// Bulk-records already-dense values (the coded strategy's per-piece
  /// fold, which de-interleaves by piece before counting). Order-equivalent
  /// to add() per element, like fold().
  void fold_values(std::span<const ResultValue> values);

  /// Records one more vote for `value`.
  void add(ResultValue value);

  /// Total number of votes recorded.
  [[nodiscard]] int total() const { return total_; }

  /// Number of distinct values seen.
  [[nodiscard]] std::size_t distinct() const { return distinct_; }

  /// Votes recorded for `value` (0 if never seen).
  [[nodiscard]] int count(ResultValue value) const;

  /// The leader and runner-up in one scan — what decide() hot paths use
  /// instead of three separate leader()/leader_count()/runner_up_count()
  /// walks. Ties break toward the value seen first (deterministic runs).
  /// Requires total() > 0.
  struct Standing {
    ResultValue leader;
    int leader_count;
    int runner_up_count;

    [[nodiscard]] int margin() const { return leader_count - runner_up_count; }
  };
  [[nodiscard]] Standing standing() const;

  /// The value with the most votes. Ties break toward the value seen first,
  /// which keeps simulation runs deterministic. Requires total() > 0.
  [[nodiscard]] ResultValue leader() const { return standing().leader; }

  /// Vote count of the leader. Requires total() > 0.
  [[nodiscard]] int leader_count() const { return standing().leader_count; }

  /// Vote count of the runner-up (0 when only one value has been seen).
  /// Requires total() > 0.
  [[nodiscard]] int runner_up_count() const {
    return standing().runner_up_count;
  }

  /// leader_count() − runner_up_count(): the margin the iterative
  /// technique drives to `d`. Requires total() > 0.
  [[nodiscard]] int margin() const { return standing().margin(); }

  /// Sum of votes not cast for the leader. Requires total() > 0.
  [[nodiscard]] int minority_total() const { return total_ - leader_count(); }

 private:
  /// Inline capacity sized for the binary worst case (2 distinct values)
  /// with headroom; tallies only touch the heap past this, which in
  /// practice means never outside the §5.3 non-binary relaxation. The
  /// decide() hot path builds a tally per consult, so this matters.
  static constexpr std::size_t kInlineEntries = 4;

  [[nodiscard]] bool spilled() const { return !spill_values_.empty(); }
  [[nodiscard]] const ResultValue* values_data() const {
    return spilled() ? spill_values_.data() : inline_values_.data();
  }
  [[nodiscard]] const int* counts_data() const {
    return spilled() ? spill_counts_.data() : inline_counts_.data();
  }
  [[nodiscard]] int* counts_data() {
    return spilled() ? spill_counts_.data() : inline_counts_.data();
  }
  /// Appends a newly seen value with count 0, spilling both arrays
  /// together past the inline capacity.
  void append_value(ResultValue value);
  /// Discovery + dense counting over an already-dense value buffer; does
  /// not touch total_.
  void absorb(const ResultValue* values, std::size_t n);

  std::array<ResultValue, kInlineEntries> inline_values_{};
  std::array<int, kInlineEntries> inline_counts_{};
  std::vector<ResultValue> spill_values_;
  std::vector<int> spill_counts_;
  std::size_t distinct_ = 0;
  int total_ = 0;
};

}  // namespace smartred::redundancy
