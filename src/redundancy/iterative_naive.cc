#include "redundancy/iterative_naive.h"

#include <cmath>
#include <sstream>

namespace smartred::redundancy {
namespace {

// Thresholds are met up to this slack. When the target R mathematically
// equals an achievable confidence (e.g. R = r with one vote), the two
// log-space evaluations of q can straddle R by an ulp; the slack keeps the
// integer search stable and consistent with analysis::margin_for_confidence,
// which applies the same slack.
constexpr double kThresholdSlack = 1e-12;

}  // namespace

IterativeNaive::IterativeNaive(double reliability,
                               double confidence_threshold)
    : r_(reliability), threshold_(confidence_threshold) {
  SMARTRED_EXPECT(reliability > 0.5 && reliability < 1.0,
                  "naive iterative redundancy needs r in (0.5, 1)");
  SMARTRED_EXPECT(confidence_threshold >= 0.5 && confidence_threshold < 1.0,
                  "confidence threshold must be in [0.5, 1)");
}

double IterativeNaive::confidence(int majority, int minority) const {
  SMARTRED_EXPECT(majority >= 0 && minority >= 0, "counts are non-negative");
  // q(r, a, b) collapses to 1 / (1 + rho^(a−b)) with rho = (1−r)/r — the
  // margin-only dependence of Theorem 1 — but we evaluate the *defining*
  // expression here so the equivalence test against the simple algorithm is
  // not circular. Computed in log space for stability at large counts.
  const double log_r = std::log(r_);
  const double log_w = std::log1p(-r_);
  const double log_right = static_cast<double>(majority) * log_r +
                           static_cast<double>(minority) * log_w;
  const double log_wrong = static_cast<double>(minority) * log_r +
                           static_cast<double>(majority) * log_w;
  // q = e^right / (e^right + e^wrong) = 1 / (1 + e^(wrong-right)).
  return 1.0 / (1.0 + std::exp(log_wrong - log_right));
}

int IterativeNaive::required_majority(int minority) const {
  SMARTRED_EXPECT(minority >= 0, "minority count is non-negative");
  // Test consecutive a values (paper §3.3). Termination: q(r, a, b) -> 1 as
  // a -> inf for r > 0.5, so some a always reaches the threshold.
  int a = minority;
  while (confidence(a, minority) < threshold_ - kThresholdSlack) ++a;
  return a;
}

Decision IterativeNaive::decide(std::span<const Vote> votes) {
  const VoteTally tally{votes};
  if (tally.total() == 0) {
    return Decision::dispatch(required_majority(0));
  }
  const int majority = tally.leader_count();
  // The binary worst case lumps every non-leader vote into one colluding
  // minority value; with non-binary results this is conservative (§5.3).
  const int minority = tally.minority_total();
  if (confidence(majority, minority) >= threshold_ - kThresholdSlack) {
    return Decision::accept(tally.leader(),
                            Decision::Reason::kConfidenceReached);
  }
  // Dispatch the minimum number of jobs that, if they all agreed with the
  // current majority, would reach the confidence threshold.
  return Decision::dispatch(required_majority(minority) - majority);
}

IterativeNaiveFactory::IterativeNaiveFactory(double reliability,
                                             double confidence_threshold)
    : r_(reliability), threshold_(confidence_threshold) {
  SMARTRED_EXPECT(reliability > 0.5 && reliability < 1.0,
                  "naive iterative redundancy needs r in (0.5, 1)");
  SMARTRED_EXPECT(confidence_threshold >= 0.5 && confidence_threshold < 1.0,
                  "confidence threshold must be in [0.5, 1)");
}

std::unique_ptr<RedundancyStrategy> IterativeNaiveFactory::make() const {
  return std::make_unique<IterativeNaive>(r_, threshold_);
}

std::string IterativeNaiveFactory::name() const {
  std::ostringstream out;
  out << "iterative-naive(r=" << r_ << ",R=" << threshold_ << ")";
  return out.str();
}

}  // namespace smartred::redundancy
