#include "redundancy/registry.h"

#include <memory>
#include <string>
#include <vector>

#include "common/spec.h"
#include "redundancy/adaptive.h"
#include "redundancy/coded.h"
#include "redundancy/credibility.h"
#include "redundancy/iterative.h"
#include "redundancy/iterative_naive.h"
#include "redundancy/progressive.h"
#include "redundancy/self_tuning.h"
#include "redundancy/traditional.h"
#include "redundancy/weighted.h"

namespace smartred::redundancy {
namespace {

using spec::did_you_mean;
using spec::Params;

const char* const kTechniqueList =
    "traditional (tr), progressive (pr), iterative (ir), naive, weighted, "
    "selftuning, adaptive, credibility, coded";

constexpr std::string_view kTechniqueNames[] = {
    "traditional", "tr",         "progressive", "pr",       "iterative",
    "ir",          "naive",      "weighted",    "selftuning",
    "adaptive",    "credibility", "coded",
};

}  // namespace

std::shared_ptr<StrategyFactory> Registry::make(std::string_view raw_spec) {
  const auto [technique, body] = spec::split(raw_spec);
  Params params("strategy spec '" + std::string(technique) + "'", body);

  if (technique == "traditional" || technique == "tr") {
    const int k = params.get_int("k");
    params.finish("k");
    return std::make_shared<TraditionalFactory>(k);
  }
  if (technique == "progressive" || technique == "pr") {
    const int k = params.get_int("k");
    params.finish("k");
    return std::make_shared<ProgressiveFactory>(k);
  }
  if (technique == "iterative" || technique == "ir") {
    const int d = params.get_int("d");
    params.finish("d");
    return std::make_shared<IterativeFactory>(d);
  }
  if (technique == "naive") {
    const double r = params.get_double("r");
    const double target = params.get_double("R");
    params.finish("r, R");
    return std::make_shared<IterativeNaiveFactory>(r, target);
  }
  if (technique == "weighted") {
    // The registry can only express a uniform pool — per-node lookups need
    // code. r doubles as every node's reliability and the typical gain.
    const double r = params.get_double("r");
    const double target = params.get_double("R");
    params.finish("r, R");
    return std::make_shared<WeightedIterativeFactory>(
        [r](NodeId) { return r; }, r, target);
  }
  if (technique == "selftuning") {
    SelfTuningConfig config;
    config.target_reliability = params.get_double("R");
    config.initial_margin = params.get_int("initial", config.initial_margin);
    config.warmup_votes = params.get_int("warmup", config.warmup_votes);
    config.max_margin = params.get_int("max", config.max_margin);
    config.min_usable_estimate =
        params.get_double("min_estimate", config.min_usable_estimate);
    config.forgetting = params.get_double("forgetting", config.forgetting);
    params.finish("R, initial, warmup, max, min_estimate, forgetting");
    return std::make_shared<SelfTuningFactory>(config);
  }
  if (technique == "adaptive") {
    const int quorum = params.get_int("quorum");
    const int trust = params.get_int("trust");
    params.finish("quorum, trust");
    return std::make_shared<AdaptiveFactory>(
        std::make_shared<TrustBook>(trust), quorum);
  }
  if (technique == "credibility") {
    const double threshold = params.get_double("threshold");
    const double fault = params.get_double("f", 0.2);
    params.finish("threshold, f");
    return std::make_shared<CredibilityFactory>(
        std::make_shared<ReputationBook>(fault), threshold);
  }
  if (technique == "coded") {
    CodedConfig config;
    config.n = params.get_int("n");
    config.k = params.get_int("k");
    config.g = params.get_int("g", config.n);
    config.d = params.get_int("d", 1);
    config.v = params.get_int("v", -1);
    params.finish("n, k, g, d, v");
    if (config.n < 1 || config.n > kMaxCodedPieces) {
      params.fail("n must be in [1, " + std::to_string(kMaxCodedPieces) +
                  "], got " + std::to_string(config.n));
    }
    if (config.k < 1 || config.k > config.n) {
      params.fail("k must satisfy 1 <= k <= n, got k=" +
                  std::to_string(config.k) + " with n=" +
                  std::to_string(config.n));
    }
    if (config.g < 1 || config.n % config.g != 0) {
      params.fail("wave size g must divide n, got g=" +
                  std::to_string(config.g) + " with n=" +
                  std::to_string(config.n));
    }
    if (config.d < 1) {
      params.fail("per-piece margin d must be >= 1, got " +
                  std::to_string(config.d));
    }
    if (config.v < -1 || (config.v >= 0 && config.k + config.v > config.n)) {
      params.fail("verify overhead v must satisfy 0 <= v and k+v <= n, got "
                  "v=" + std::to_string(config.v));
    }
    return std::make_shared<CodedFactory>(config);
  }
  throw SpecError("unknown redundancy technique '" + std::string(technique) +
                  "' (known: " + kTechniqueList + ")" +
                  did_you_mean(technique, kTechniqueNames));
}

std::vector<std::string> Registry::describe() {
  return {
      "traditional (tr): k=<int>            majority over k copies",
      "progressive (pr): k=<int>            quorum of k, jobs in waves",
      "iterative (ir):   d=<int>            margin rule, margin d",
      "naive:            r=<p>,R=<p>        naive confidence iteration",
      "weighted:         r=<p>,R=<p>        weighted votes, uniform pool",
      "selftuning:       R=<p>[,initial=,warmup=,max=,min_estimate=,"
      "forgetting=]",
      "adaptive:         quorum=<int>,trust=<int>",
      "credibility:      threshold=<p>[,f=<p>]",
      "coded:            n=<int>,k=<int>[,g=n,d=1,v=min(1,n-k)]  any k of n "
      "pieces reconstruct; waves of g",
  };
}

}  // namespace smartred::redundancy
