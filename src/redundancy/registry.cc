#include "redundancy/registry.h"

#include <algorithm>
#include <charconv>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "redundancy/adaptive.h"
#include "redundancy/coded.h"
#include "redundancy/credibility.h"
#include "redundancy/iterative.h"
#include "redundancy/iterative_naive.h"
#include "redundancy/progressive.h"
#include "redundancy/self_tuning.h"
#include "redundancy/traditional.h"
#include "redundancy/weighted.h"

namespace smartred::redundancy {
namespace {

/// Plain dynamic-programming edit distance, for did-you-mean suggestions.
/// Spec vocabularies are tiny (a dozen names, single-char keys), so the
/// O(len^2) table is irrelevant.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t above = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = above;
    }
  }
  return row[b.size()];
}

/// " — did you mean 'X'?" when some candidate is within edit distance 2 of
/// `input` (ties break toward the earlier candidate); empty otherwise.
std::string did_you_mean(std::string_view input,
                         std::span<const std::string_view> candidates) {
  std::string_view best;
  std::size_t best_distance = 3;  // suggestions past distance 2 mislead
  for (const std::string_view candidate : candidates) {
    if (candidate == input) continue;
    const std::size_t distance = edit_distance(input, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  if (best.empty()) return {};
  return " — did you mean '" + std::string(best) + "'?";
}

/// Parsed `key=value` pairs of a spec, tracking which keys the technique
/// consumed so leftovers can be reported as unknown.
class Params {
 public:
  Params(std::string_view technique, std::string_view body)
      : technique_(technique) {
    while (!body.empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view pair = body.substr(0, comma);
      body = comma == std::string_view::npos ? std::string_view{}
                                             : body.substr(comma + 1);
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) {
        fail("expected key=value, got '" + std::string(pair) + "'");
      }
      const std::string_view key = pair.substr(0, eq);
      for (const Entry& entry : entries_) {
        if (entry.key == key) {
          fail("duplicate key '" + std::string(key) + "'");
        }
      }
      entries_.push_back(Entry{std::string(key),
                               std::string(pair.substr(eq + 1)), false});
    }
  }

  /// Required integer parameter.
  int get_int(std::string_view key) {
    return parse_int(key, require(key));
  }
  /// Required floating parameter.
  double get_double(std::string_view key) {
    return parse_double(key, require(key));
  }
  /// Optional parameters fall back to the given default.
  int get_int(std::string_view key, int fallback) {
    const std::string* raw = find(key);
    return raw == nullptr ? fallback : parse_int(key, *raw);
  }
  double get_double(std::string_view key, double fallback) {
    const std::string* raw = find(key);
    return raw == nullptr ? fallback : parse_double(key, *raw);
  }

  /// Call after consuming everything the technique understands: any key
  /// never looked up is unknown, and that is an error (with a did-you-mean
  /// nudge when the key is a near-miss of a valid one).
  void finish(std::string_view valid_keys) const {
    for (const Entry& entry : entries_) {
      if (!entry.consumed) {
        std::vector<std::string_view> candidates;
        std::string_view rest = valid_keys;
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          std::string_view key = rest.substr(0, comma);
          rest = comma == std::string_view::npos ? std::string_view{}
                                                 : rest.substr(comma + 1);
          while (!key.empty() && key.front() == ' ') key.remove_prefix(1);
          if (!key.empty()) candidates.push_back(key);
        }
        fail("unknown key '" + entry.key + "' (valid keys: " +
             std::string(valid_keys) + ")" +
             did_you_mean(entry.key, candidates));
      }
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw SpecError("strategy spec '" + std::string(technique_) +
                    "': " + what);
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool consumed;
  };

  const std::string* find(std::string_view key) {
    for (Entry& entry : entries_) {
      if (entry.key == key) {
        entry.consumed = true;
        return &entry.value;
      }
    }
    return nullptr;
  }

  const std::string& require(std::string_view key) {
    const std::string* raw = find(key);
    if (raw == nullptr) {
      fail("missing required key '" + std::string(key) + "'");
    }
    return *raw;
  }

  int parse_int(std::string_view key, const std::string& raw) const {
    int value = 0;
    const auto [end, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), value);
    if (ec != std::errc{} || end != raw.data() + raw.size()) {
      fail("key '" + std::string(key) + "': '" + raw +
           "' is not an integer");
    }
    return value;
  }

  double parse_double(std::string_view key, const std::string& raw) const {
    // std::from_chars for doubles is spotty across standard libraries;
    // stringstream parsing is plenty for flag-sized inputs.
    std::istringstream in(raw);
    double value = 0.0;
    in >> value;
    if (in.fail() || !in.eof()) {
      fail("key '" + std::string(key) + "': '" + raw + "' is not a number");
    }
    return value;
  }

  std::string_view technique_;
  std::vector<Entry> entries_;
};

const char* const kTechniqueList =
    "traditional (tr), progressive (pr), iterative (ir), naive, weighted, "
    "selftuning, adaptive, credibility, coded";

constexpr std::string_view kTechniqueNames[] = {
    "traditional", "tr",         "progressive", "pr",       "iterative",
    "ir",          "naive",      "weighted",    "selftuning",
    "adaptive",    "credibility", "coded",
};

}  // namespace

std::shared_ptr<StrategyFactory> Registry::make(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view technique = spec.substr(0, colon);
  const std::string_view body =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  Params params(technique, body);

  if (technique == "traditional" || technique == "tr") {
    const int k = params.get_int("k");
    params.finish("k");
    return std::make_shared<TraditionalFactory>(k);
  }
  if (technique == "progressive" || technique == "pr") {
    const int k = params.get_int("k");
    params.finish("k");
    return std::make_shared<ProgressiveFactory>(k);
  }
  if (technique == "iterative" || technique == "ir") {
    const int d = params.get_int("d");
    params.finish("d");
    return std::make_shared<IterativeFactory>(d);
  }
  if (technique == "naive") {
    const double r = params.get_double("r");
    const double target = params.get_double("R");
    params.finish("r, R");
    return std::make_shared<IterativeNaiveFactory>(r, target);
  }
  if (technique == "weighted") {
    // The registry can only express a uniform pool — per-node lookups need
    // code. r doubles as every node's reliability and the typical gain.
    const double r = params.get_double("r");
    const double target = params.get_double("R");
    params.finish("r, R");
    return std::make_shared<WeightedIterativeFactory>(
        [r](NodeId) { return r; }, r, target);
  }
  if (technique == "selftuning") {
    SelfTuningConfig config;
    config.target_reliability = params.get_double("R");
    config.initial_margin = params.get_int("initial", config.initial_margin);
    config.warmup_votes = params.get_int("warmup", config.warmup_votes);
    config.max_margin = params.get_int("max", config.max_margin);
    config.min_usable_estimate =
        params.get_double("min_estimate", config.min_usable_estimate);
    config.forgetting = params.get_double("forgetting", config.forgetting);
    params.finish("R, initial, warmup, max, min_estimate, forgetting");
    return std::make_shared<SelfTuningFactory>(config);
  }
  if (technique == "adaptive") {
    const int quorum = params.get_int("quorum");
    const int trust = params.get_int("trust");
    params.finish("quorum, trust");
    return std::make_shared<AdaptiveFactory>(
        std::make_shared<TrustBook>(trust), quorum);
  }
  if (technique == "credibility") {
    const double threshold = params.get_double("threshold");
    const double fault = params.get_double("f", 0.2);
    params.finish("threshold, f");
    return std::make_shared<CredibilityFactory>(
        std::make_shared<ReputationBook>(fault), threshold);
  }
  if (technique == "coded") {
    CodedConfig config;
    config.n = params.get_int("n");
    config.k = params.get_int("k");
    config.g = params.get_int("g", config.n);
    config.d = params.get_int("d", 1);
    config.v = params.get_int("v", -1);
    params.finish("n, k, g, d, v");
    if (config.n < 1 || config.n > kMaxCodedPieces) {
      params.fail("n must be in [1, " + std::to_string(kMaxCodedPieces) +
                  "], got " + std::to_string(config.n));
    }
    if (config.k < 1 || config.k > config.n) {
      params.fail("k must satisfy 1 <= k <= n, got k=" +
                  std::to_string(config.k) + " with n=" +
                  std::to_string(config.n));
    }
    if (config.g < 1 || config.n % config.g != 0) {
      params.fail("wave size g must divide n, got g=" +
                  std::to_string(config.g) + " with n=" +
                  std::to_string(config.n));
    }
    if (config.d < 1) {
      params.fail("per-piece margin d must be >= 1, got " +
                  std::to_string(config.d));
    }
    if (config.v < -1 || (config.v >= 0 && config.k + config.v > config.n)) {
      params.fail("verify overhead v must satisfy 0 <= v and k+v <= n, got "
                  "v=" + std::to_string(config.v));
    }
    return std::make_shared<CodedFactory>(config);
  }
  throw SpecError("unknown redundancy technique '" + std::string(technique) +
                  "' (known: " + kTechniqueList + ")" +
                  did_you_mean(technique, kTechniqueNames));
}

std::vector<std::string> Registry::describe() {
  return {
      "traditional (tr): k=<int>            majority over k copies",
      "progressive (pr): k=<int>            quorum of k, jobs in waves",
      "iterative (ir):   d=<int>            margin rule, margin d",
      "naive:            r=<p>,R=<p>        naive confidence iteration",
      "weighted:         r=<p>,R=<p>        weighted votes, uniform pool",
      "selftuning:       R=<p>[,initial=,warmup=,max=,min_estimate=,"
      "forgetting=]",
      "adaptive:         quorum=<int>,trust=<int>",
      "credibility:      threshold=<p>[,f=<p>]",
      "coded:            n=<int>,k=<int>[,g=n,d=1,v=min(1,n-k)]  any k of n "
      "pieces reconstruct; waves of g",
  };
}

}  // namespace smartred::redundancy
