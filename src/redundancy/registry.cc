#include "redundancy/registry.h"

#include <charconv>
#include <sstream>
#include <utility>

#include "redundancy/adaptive.h"
#include "redundancy/credibility.h"
#include "redundancy/iterative.h"
#include "redundancy/iterative_naive.h"
#include "redundancy/progressive.h"
#include "redundancy/self_tuning.h"
#include "redundancy/traditional.h"
#include "redundancy/weighted.h"

namespace smartred::redundancy {
namespace {

/// Parsed `key=value` pairs of a spec, tracking which keys the technique
/// consumed so leftovers can be reported as unknown.
class Params {
 public:
  Params(std::string_view technique, std::string_view body)
      : technique_(technique) {
    while (!body.empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view pair = body.substr(0, comma);
      body = comma == std::string_view::npos ? std::string_view{}
                                             : body.substr(comma + 1);
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) {
        fail("expected key=value, got '" + std::string(pair) + "'");
      }
      const std::string_view key = pair.substr(0, eq);
      for (const Entry& entry : entries_) {
        if (entry.key == key) {
          fail("duplicate key '" + std::string(key) + "'");
        }
      }
      entries_.push_back(Entry{std::string(key),
                               std::string(pair.substr(eq + 1)), false});
    }
  }

  /// Required integer parameter.
  int get_int(std::string_view key) {
    return parse_int(key, require(key));
  }
  /// Required floating parameter.
  double get_double(std::string_view key) {
    return parse_double(key, require(key));
  }
  /// Optional parameters fall back to the given default.
  int get_int(std::string_view key, int fallback) {
    const std::string* raw = find(key);
    return raw == nullptr ? fallback : parse_int(key, *raw);
  }
  double get_double(std::string_view key, double fallback) {
    const std::string* raw = find(key);
    return raw == nullptr ? fallback : parse_double(key, *raw);
  }

  /// Call after consuming everything the technique understands: any key
  /// never looked up is unknown, and that is an error.
  void finish(std::string_view valid_keys) const {
    for (const Entry& entry : entries_) {
      if (!entry.consumed) {
        fail("unknown key '" + entry.key + "' (valid keys: " +
             std::string(valid_keys) + ")");
      }
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw SpecError("strategy spec '" + std::string(technique_) +
                    "': " + what);
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool consumed;
  };

  const std::string* find(std::string_view key) {
    for (Entry& entry : entries_) {
      if (entry.key == key) {
        entry.consumed = true;
        return &entry.value;
      }
    }
    return nullptr;
  }

  const std::string& require(std::string_view key) {
    const std::string* raw = find(key);
    if (raw == nullptr) {
      fail("missing required key '" + std::string(key) + "'");
    }
    return *raw;
  }

  int parse_int(std::string_view key, const std::string& raw) const {
    int value = 0;
    const auto [end, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), value);
    if (ec != std::errc{} || end != raw.data() + raw.size()) {
      fail("key '" + std::string(key) + "': '" + raw +
           "' is not an integer");
    }
    return value;
  }

  double parse_double(std::string_view key, const std::string& raw) const {
    // std::from_chars for doubles is spotty across standard libraries;
    // stringstream parsing is plenty for flag-sized inputs.
    std::istringstream in(raw);
    double value = 0.0;
    in >> value;
    if (in.fail() || !in.eof()) {
      fail("key '" + std::string(key) + "': '" + raw + "' is not a number");
    }
    return value;
  }

  std::string_view technique_;
  std::vector<Entry> entries_;
};

const char* const kTechniqueList =
    "traditional (tr), progressive (pr), iterative (ir), naive, weighted, "
    "selftuning, adaptive, credibility";

}  // namespace

std::shared_ptr<StrategyFactory> Registry::make(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view technique = spec.substr(0, colon);
  const std::string_view body =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  Params params(technique, body);

  if (technique == "traditional" || technique == "tr") {
    const int k = params.get_int("k");
    params.finish("k");
    return std::make_shared<TraditionalFactory>(k);
  }
  if (technique == "progressive" || technique == "pr") {
    const int k = params.get_int("k");
    params.finish("k");
    return std::make_shared<ProgressiveFactory>(k);
  }
  if (technique == "iterative" || technique == "ir") {
    const int d = params.get_int("d");
    params.finish("d");
    return std::make_shared<IterativeFactory>(d);
  }
  if (technique == "naive") {
    const double r = params.get_double("r");
    const double target = params.get_double("R");
    params.finish("r, R");
    return std::make_shared<IterativeNaiveFactory>(r, target);
  }
  if (technique == "weighted") {
    // The registry can only express a uniform pool — per-node lookups need
    // code. r doubles as every node's reliability and the typical gain.
    const double r = params.get_double("r");
    const double target = params.get_double("R");
    params.finish("r, R");
    return std::make_shared<WeightedIterativeFactory>(
        [r](NodeId) { return r; }, r, target);
  }
  if (technique == "selftuning") {
    SelfTuningConfig config;
    config.target_reliability = params.get_double("R");
    config.initial_margin = params.get_int("initial", config.initial_margin);
    config.warmup_votes = params.get_int("warmup", config.warmup_votes);
    config.max_margin = params.get_int("max", config.max_margin);
    config.min_usable_estimate =
        params.get_double("min_estimate", config.min_usable_estimate);
    config.forgetting = params.get_double("forgetting", config.forgetting);
    params.finish("R, initial, warmup, max, min_estimate, forgetting");
    return std::make_shared<SelfTuningFactory>(config);
  }
  if (technique == "adaptive") {
    const int quorum = params.get_int("quorum");
    const int trust = params.get_int("trust");
    params.finish("quorum, trust");
    return std::make_shared<AdaptiveFactory>(
        std::make_shared<TrustBook>(trust), quorum);
  }
  if (technique == "credibility") {
    const double threshold = params.get_double("threshold");
    const double fault = params.get_double("f", 0.2);
    params.finish("threshold, f");
    return std::make_shared<CredibilityFactory>(
        std::make_shared<ReputationBook>(fault), threshold);
  }
  throw SpecError("unknown redundancy technique '" + std::string(technique) +
                  "' (known: " + kTechniqueList + ")");
}

std::vector<std::string> Registry::describe() {
  return {
      "traditional (tr): k=<int>            majority over k copies",
      "progressive (pr): k=<int>            quorum of k, jobs in waves",
      "iterative (ir):   d=<int>            margin rule, margin d",
      "naive:            r=<p>,R=<p>        naive confidence iteration",
      "weighted:         r=<p>,R=<p>        weighted votes, uniform pool",
      "selftuning:       R=<p>[,initial=,warmup=,max=,min_estimate=,"
      "forgetting=]",
      "adaptive:         quorum=<int>,trust=<int>",
      "credibility:      threshold=<p>[,f=<p>]",
  };
}

}  // namespace smartred::redundancy
