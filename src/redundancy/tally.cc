#include "redundancy/types.h"

#include <algorithm>

namespace smartred::redundancy {

VoteTally::VoteTally(std::span<const Vote> votes) {
  for (const Vote& vote : votes) add(vote.value);
}

void VoteTally::add(ResultValue value) {
  ++total_;
  for (Entry& entry : counts_) {
    if (entry.value == value) {
      ++entry.count;
      return;
    }
  }
  counts_.push_back(Entry{value, 1});
}

int VoteTally::count(ResultValue value) const {
  for (const Entry& entry : counts_) {
    if (entry.value == value) return entry.count;
  }
  return 0;
}

const VoteTally::Entry& VoteTally::leader_entry() const {
  SMARTRED_EXPECT(total_ > 0, "tally is empty");
  // First-seen wins ties: strict > keeps the earliest maximal entry.
  const Entry* best = &counts_.front();
  for (const Entry& entry : counts_) {
    if (entry.count > best->count) best = &entry;
  }
  return *best;
}

ResultValue VoteTally::leader() const { return leader_entry().value; }

int VoteTally::leader_count() const { return leader_entry().count; }

int VoteTally::runner_up_count() const {
  const Entry& lead = leader_entry();
  int best = 0;
  for (const Entry& entry : counts_) {
    if (&entry != &lead) best = std::max(best, entry.count);
  }
  return best;
}

int VoteTally::margin() const { return leader_count() - runner_up_count(); }

}  // namespace smartred::redundancy
