#include "redundancy/types.h"

#include <algorithm>

namespace smartred::redundancy {

VoteTally::VoteTally(std::span<const Vote> votes) {
  for (const Vote& vote : votes) add(vote.value);
}

void VoteTally::add(ResultValue value) {
  ++total_;
  Entry* const data = spilled() ? spill_.data() : inline_.data();
  for (std::size_t i = 0; i < distinct_; ++i) {
    if (data[i].value == value) {
      ++data[i].count;
      return;
    }
  }
  if (!spilled() && distinct_ == kInlineEntries) {
    spill_.assign(inline_.begin(), inline_.end());
  }
  if (spilled()) {
    spill_.push_back(Entry{value, 1});
  } else {
    inline_[distinct_] = Entry{value, 1};
  }
  ++distinct_;
}

int VoteTally::count(ResultValue value) const {
  for (const Entry& entry : entries()) {
    if (entry.value == value) return entry.count;
  }
  return 0;
}

const VoteTally::Entry& VoteTally::leader_entry() const {
  SMARTRED_EXPECT(total_ > 0, "tally is empty");
  const std::span<const Entry> all = entries();
  // First-seen wins ties: strict > keeps the earliest maximal entry.
  const Entry* best = &all.front();
  for (const Entry& entry : all) {
    if (entry.count > best->count) best = &entry;
  }
  return *best;
}

ResultValue VoteTally::leader() const { return leader_entry().value; }

int VoteTally::leader_count() const { return leader_entry().count; }

int VoteTally::runner_up_count() const {
  const Entry& lead = leader_entry();
  int best = 0;
  for (const Entry& entry : entries()) {
    if (&entry != &lead) best = std::max(best, entry.count);
  }
  return best;
}

int VoteTally::margin() const { return leader_count() - runner_up_count(); }

}  // namespace smartred::redundancy
