#include "redundancy/types.h"

#include <algorithm>

namespace smartred::redundancy {

void VoteTally::append_value(ResultValue value) {
  if (!spilled() && distinct_ == kInlineEntries) {
    spill_values_.assign(inline_values_.begin(), inline_values_.end());
    spill_counts_.assign(inline_counts_.begin(), inline_counts_.end());
  }
  if (spilled()) {
    spill_values_.push_back(value);
    spill_counts_.push_back(0);
  } else {
    inline_values_[distinct_] = value;
    inline_counts_[distinct_] = 0;
  }
  ++distinct_;
}

void VoteTally::absorb(const ResultValue* values, std::size_t n) {
  if (n == 0) return;
  // Fast path for the binary worst case (§2.2): at most two distinct
  // values between tally and buffer. Both counts come from one fused
  // branch-free compare-accumulate sweep; the only per-element branch is
  // the short scan locating the second value's first occurrence. Falls
  // through to the general path — recomputing from scratch, nothing
  // committed yet — the moment a third value shows up (§5.3 non-binary).
  if (!spilled() && distinct_ <= 2) {
    ResultValue first = distinct_ >= 1 ? inline_values_[0] : values[0];
    ResultValue second = 0;
    bool have_second = distinct_ == 2;
    if (have_second) {
      second = inline_values_[1];
    } else {
      std::size_t j = 0;
      while (j < n && values[j] == first) ++j;
      if (j < n) {
        second = values[j];
        have_second = true;
      }
    }
    int count_first = 0;
    int count_second = 0;
    for (std::size_t j = 0; j < n; ++j) {
      count_first += static_cast<int>(values[j] == first);
      count_second += static_cast<int>(values[j] == second);
    }
    // With one distinct value, count_second may alias stray matches of the
    // zero-initialized `second`; only count_first is meaningful then.
    const int covered = have_second ? count_first + count_second
                                    : count_first;
    if (covered == static_cast<int>(n)) {
      if (distinct_ == 0) append_value(first);
      inline_counts_[0] += count_first;
      if (have_second) {
        if (distinct_ == 1) append_value(second);
        inline_counts_[1] += count_second;
      }
      return;
    }
  }
  // Discovery pass, in order (first-seen order is the tie-break order).
  // The membership test is a branch-free OR-scan of the distinct values —
  // at most a handful — with the only branch the rare "new value" append.
  for (std::size_t j = 0; j < n; ++j) {
    const ResultValue value = values[j];
    const ResultValue* known = values_data();
    bool found = false;
    for (std::size_t d = 0; d < distinct_; ++d) {
      found |= known[d] == value;
    }
    if (!found) append_value(value);
  }
  // Counting pass: one dense equality-count sweep per distinct value.
  // Branch-free and autovectorizable (compare + accumulate over int32
  // lanes); a value discovered above cannot occur before its first
  // occurrence, so counting the whole buffer per value is exact.
  const ResultValue* known = values_data();
  int* counts = counts_data();
  for (std::size_t d = 0; d < distinct_; ++d) {
    const ResultValue value = known[d];
    int count = 0;
    for (std::size_t j = 0; j < n; ++j) {
      count += static_cast<int>(values[j] == value);
    }
    counts[d] += count;
  }
}

void VoteTally::fold(std::span<const Vote> votes) {
  // De-interleave the AoS vote records into a dense value buffer in fixed
  // stack-sized chunks, then absorb each chunk. Chunking bounds the stack
  // and keeps the working buffer L1-resident; values first seen in a later
  // chunk cannot appear in an earlier one, so per-chunk counting is exact.
  constexpr std::size_t kChunk = 256;
  ResultValue buffer[kChunk];
  const std::size_t n = votes.size();
  total_ += static_cast<int>(n);
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t chunk = std::min(kChunk, n - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      buffer[j] = votes[i + j].value;
    }
    absorb(buffer, chunk);
  }
}

void VoteTally::fold_values(std::span<const ResultValue> values) {
  total_ += static_cast<int>(values.size());
  absorb(values.data(), values.size());
}

void VoteTally::add(ResultValue value) {
  ++total_;
  const ResultValue* known = values_data();
  for (std::size_t d = 0; d < distinct_; ++d) {
    if (known[d] == value) {
      ++counts_data()[d];
      return;
    }
  }
  append_value(value);
  ++counts_data()[distinct_ - 1];
}

int VoteTally::count(ResultValue value) const {
  const ResultValue* known = values_data();
  for (std::size_t d = 0; d < distinct_; ++d) {
    if (known[d] == value) return counts_data()[d];
  }
  return 0;
}

VoteTally::Standing VoteTally::standing() const {
  SMARTRED_EXPECT(total_ > 0, "tally is empty");
  const ResultValue* known = values_data();
  const int* counts = counts_data();
  // First-seen wins ties: strict > keeps the earliest maximal entry.
  std::size_t lead = 0;
  for (std::size_t d = 1; d < distinct_; ++d) {
    if (counts[d] > counts[lead]) lead = d;
  }
  int runner_up = 0;
  for (std::size_t d = 0; d < distinct_; ++d) {
    if (d != lead) runner_up = std::max(runner_up, counts[d]);
  }
  return Standing{known[lead], counts[lead], runner_up};
}

}  // namespace smartred::redundancy
