#include "redundancy/traditional.h"

namespace smartred::redundancy {

TraditionalRedundancy::TraditionalRedundancy(int k) : k_(k) {
  SMARTRED_EXPECT(k >= 1 && k % 2 == 1, "traditional redundancy needs odd k");
}

Decision TraditionalRedundancy::decide(std::span<const Vote> votes) {
  const VoteTally tally{votes};
  if (tally.total() < k_) {
    // First call dispatches the full wave of k; later shortfalls only occur
    // when a substrate re-consults after job loss (timeout), in which case
    // the missing jobs are re-dispatched.
    return Decision::dispatch(k_ - tally.total());
  }
  // With odd k and binary results the leader always holds a strict majority;
  // with non-binary results (paper §5.3) this generalizes to plurality.
  return Decision::accept(tally.leader(), Decision::Reason::kMajority);
}

TraditionalFactory::TraditionalFactory(int k) : k_(k) {
  SMARTRED_EXPECT(k >= 1 && k % 2 == 1, "traditional redundancy needs odd k");
}

std::unique_ptr<RedundancyStrategy> TraditionalFactory::make() const {
  return std::make_unique<TraditionalRedundancy>(k_);
}

std::string TraditionalFactory::name() const {
  return "traditional(k=" + std::to_string(k_) + ")";
}

}  // namespace smartred::redundancy
