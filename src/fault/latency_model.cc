#include "fault/latency_model.h"

#include <cmath>

#include "common/expect.h"

namespace smartred::fault {

UniformLatency::UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
  SMARTRED_EXPECT(lo > 0.0 && lo <= hi,
                  "uniform latency bounds must satisfy 0 < lo <= hi");
}

double UniformLatency::sample(redundancy::NodeId /*node*/,
                              std::uint64_t /*task*/, rng::Stream& rng) {
  return rng.uniform(lo_, hi_);
}

LognormalLatency::LognormalLatency(double mean, double sigma)
    : mu_(std::log(mean) - sigma * sigma / 2.0), sigma_(sigma) {
  SMARTRED_EXPECT(mean > 0.0, "lognormal latency mean must be positive");
  SMARTRED_EXPECT(sigma >= 0.0, "lognormal sigma must be non-negative");
}

double LognormalLatency::sample(redundancy::NodeId /*node*/,
                                std::uint64_t /*task*/, rng::Stream& rng) {
  return rng.lognormal(mu_, sigma_);
}

ParetoLatency::ParetoLatency(double scale, double alpha)
    : scale_(scale), alpha_(alpha) {
  SMARTRED_EXPECT(scale > 0.0, "pareto scale must be positive");
  SMARTRED_EXPECT(alpha > 0.0, "pareto shape must be positive");
}

double ParetoLatency::sample(redundancy::NodeId /*node*/,
                             std::uint64_t /*task*/, rng::Stream& rng) {
  // Inverse-CDF: x_m * (1 - u)^(-1/alpha), u uniform in [0, 1).
  const double u = rng.uniform01();
  return scale_ * std::pow(1.0 - u, -1.0 / alpha_);
}

SlowNodeLatency::SlowNodeLatency(LatencyModel& base, double slow_fraction,
                                 double slowdown, rng::Stream seed_stream)
    : base_(base),
      slow_fraction_(slow_fraction),
      slowdown_(slowdown),
      seed_stream_(seed_stream) {
  SMARTRED_EXPECT(slow_fraction >= 0.0 && slow_fraction <= 1.0,
                  "slow fraction must be in [0, 1]");
  SMARTRED_EXPECT(slowdown >= 1.0, "slowdown factor must be >= 1");
}

bool SlowNodeLatency::is_slow(redundancy::NodeId node) {
  const auto found = slow_.find(node);
  if (found != slow_.end()) return found->second;
  rng::Stream node_rng = seed_stream_.fork(node);
  const bool slow = node_rng.bernoulli(slow_fraction_);
  slow_.emplace(node, slow);
  return slow;
}

double SlowNodeLatency::sample(redundancy::NodeId node, std::uint64_t task,
                               rng::Stream& rng) {
  const double base = base_.sample(node, task, rng);
  return is_slow(node) ? base * slowdown_ : base;
}

TransientStallLatency::TransientStallLatency(LatencyModel& base,
                                             double stall_prob,
                                             double stall_mean)
    : base_(base), stall_prob_(stall_prob), stall_mean_(stall_mean) {
  SMARTRED_EXPECT(stall_prob >= 0.0 && stall_prob <= 1.0,
                  "stall probability must be in [0, 1]");
  SMARTRED_EXPECT(stall_mean > 0.0, "stall mean must be positive");
}

double TransientStallLatency::sample(redundancy::NodeId node,
                                     std::uint64_t task, rng::Stream& rng) {
  const double base = base_.sample(node, task, rng);
  if (!rng.bernoulli(stall_prob_)) return base;
  return base + rng.exponential(stall_mean_);
}

}  // namespace smartred::fault
