// Node-reliability distributions.
//
// The paper's core analysis assumes one average reliability r for the whole
// pool (assumption 1, §2.3); §5.3 relaxes this to heterogeneous per-node
// reliabilities. A ReliabilityDistribution describes the pool;
// a ReliabilityAssigner deterministically samples and memoizes one value per
// node id, so churned-in nodes get stable reliabilities without any global
// ordering dependence.
#pragma once

#include <unordered_map>
#include <variant>

#include "common/rng.h"
#include "redundancy/types.h"

namespace smartred::fault {

/// Every node has the same reliability.
struct ConstantReliability {
  double value = 0.7;
};

/// Reliability uniform in [lo, hi].
struct UniformReliability {
  double lo = 0.5;
  double hi = 0.9;
};

/// A `good_fraction` of nodes have reliability `good`, the rest `bad`
/// (models a pool with a malicious/broken minority).
struct TwoPointReliability {
  double good_fraction = 0.8;
  double good = 0.95;
  double bad = 0.2;
};

using ReliabilityDistribution =
    std::variant<ConstantReliability, UniformReliability, TwoPointReliability>;

/// Mean reliability of the distribution (the r that enters the formulas).
[[nodiscard]] double mean_reliability(const ReliabilityDistribution& dist);

/// Draws one reliability from the distribution.
[[nodiscard]] double sample_reliability(const ReliabilityDistribution& dist,
                                        rng::Stream& rng);

/// Deterministic per-node reliability: the value for a node id is sampled
/// from the distribution on first use (keyed by forking the seed stream with
/// the node id) and memoized, so it does not depend on query order.
class ReliabilityAssigner {
 public:
  ReliabilityAssigner(ReliabilityDistribution dist, rng::Stream seed_stream);

  [[nodiscard]] double reliability(redundancy::NodeId node);

  /// The distribution mean (not the empirical mean of sampled nodes).
  [[nodiscard]] double mean() const { return mean_reliability(dist_); }

 private:
  ReliabilityDistribution dist_;
  rng::Stream seed_stream_;
  std::unordered_map<redundancy::NodeId, double> cache_;
};

}  // namespace smartred::fault
