#include "fault/failure_model.h"

#include "common/expect.h"

namespace smartred::fault {
namespace {

/// The colluding wrong answer for a task: one fixed value distinct from the
/// correct one, shared by all colluders (the paper's worst case).
redundancy::ResultValue colluding_wrong(redundancy::ResultValue correct) {
  // Coded-piece values span the full 32-bit range; wrap instead of
  // overflowing signed arithmetic.
  return static_cast<redundancy::ResultValue>(
      static_cast<std::uint32_t>(correct) + 1U);
}

}  // namespace

ByzantineCollusion::ByzantineCollusion(ReliabilityAssigner assigner)
    : assigner_(std::move(assigner)) {}

redundancy::ResultValue ByzantineCollusion::report(
    redundancy::NodeId node, std::uint64_t /*task*/,
    redundancy::ResultValue correct, rng::Stream& rng) {
  if (rng.bernoulli(assigner_.reliability(node))) return correct;
  return colluding_wrong(correct);
}

ScatteredWrong::ScatteredWrong(ReliabilityAssigner assigner, int spread)
    : assigner_(std::move(assigner)), spread_(spread) {
  SMARTRED_EXPECT(spread >= 1, "wrong-answer spread must be >= 1");
}

redundancy::ResultValue ScatteredWrong::report(redundancy::NodeId node,
                                               std::uint64_t /*task*/,
                                               redundancy::ResultValue correct,
                                               rng::Stream& rng) {
  if (rng.bernoulli(assigner_.reliability(node))) return correct;
  const auto offset = static_cast<std::uint32_t>(
      rng.uniform_int(1, static_cast<std::uint64_t>(spread_)));
  return static_cast<redundancy::ResultValue>(
      static_cast<std::uint32_t>(correct) + offset);
}

CorrelatedClusters::CorrelatedClusters(ReliabilityAssigner assigner,
                                       int clusters,
                                       double cluster_failure_prob,
                                       rng::Stream cluster_seed)
    : assigner_(std::move(assigner)),
      clusters_(clusters),
      cluster_failure_prob_(cluster_failure_prob),
      cluster_seed_(cluster_seed) {
  SMARTRED_EXPECT(clusters >= 1, "need at least one cluster");
  SMARTRED_EXPECT(cluster_failure_prob >= 0.0 && cluster_failure_prob <= 1.0,
                  "cluster failure probability must be in [0, 1]");
}

int CorrelatedClusters::cluster_of(redundancy::NodeId node) const {
  return static_cast<int>(node % static_cast<redundancy::NodeId>(clusters_));
}

double CorrelatedClusters::effective_reliability() {
  return (1.0 - cluster_failure_prob_) * assigner_.mean();
}

redundancy::ResultValue CorrelatedClusters::report(
    redundancy::NodeId node, std::uint64_t task,
    redundancy::ResultValue correct, rng::Stream& rng) {
  // The shared cluster event is keyed by (task, cluster) so every member of
  // the cluster sees the same draw regardless of evaluation order.
  rng::Stream event_rng = cluster_seed_.fork(task).fork(
      static_cast<std::uint64_t>(cluster_of(node)));
  if (event_rng.bernoulli(cluster_failure_prob_)) {
    return correct + 1;  // whole cluster fails, colluding
  }
  if (rng.bernoulli(assigner_.reliability(node))) return correct;
  return correct + 1;
}

}  // namespace smartred::fault
