// Job-latency models: how long a job's base duration is.
//
// The paper's XDEVS setup (§4.1) draws job durations uniform in [0.5, 1.5]
// time units. Real volunteer pools are instead dominated by stragglers:
// heavy-tailed per-job latency (Behrouzi-Far & Soljanin, arXiv:1808.02838;
// Peng, Soljanin & Whiting, arXiv:2010.02147), persistently slow nodes, and
// transient stalls. A LatencyModel decides the *base* duration of one job
// attempt — before the workload's per-task work weight is applied and
// before dividing by the node's speed — so the same redundancy strategies
// can be evaluated under any latency regime. The substrate never sees which
// model is active.
//
// Determinism: models draw from the rng stream the substrate supplies (one
// draw sequence per run); per-node traits (e.g. which nodes are slow) are
// keyed by node id off a private seed stream and memoized, so they do not
// depend on query order — the same scheme ReliabilityAssigner uses.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "redundancy/types.h"

namespace smartred::fault {

/// Decides the base duration of one job attempt. Implementations must be
/// deterministic given the supplied rng stream and their own seed.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Base duration (in simulated time units, before work-weight scaling and
  /// node-speed division) of one attempt of `task` on `node`. Must return a
  /// positive value.
  [[nodiscard]] virtual double sample(redundancy::NodeId node,
                                      std::uint64_t task,
                                      rng::Stream& rng) = 0;

 protected:
  LatencyModel() = default;
  LatencyModel(const LatencyModel&) = default;
  LatencyModel& operator=(const LatencyModel&) = default;
};

/// The paper's default: U[lo, hi). With lo = 0.5, hi = 1.5 this reproduces
/// the §4.1 XDEVS draw exactly (same rng consumption as the inlined draw
/// it replaces, so seeded runs are unchanged).
class UniformLatency final : public LatencyModel {
 public:
  /// Requires 0 < lo <= hi.
  UniformLatency(double lo, double hi);

  double sample(redundancy::NodeId node, std::uint64_t task,
                rng::Stream& rng) override;

 private:
  double lo_;
  double hi_;
};

/// Log-normal latency: exp(N(mu, sigma)) scaled so that the distribution
/// mean equals `mean` — the classic mildly-heavy tail observed in shared
/// clusters. sigma controls tail weight (sigma = 0 degenerates to the
/// constant `mean`).
class LognormalLatency final : public LatencyModel {
 public:
  /// Requires mean > 0 and sigma >= 0.
  LognormalLatency(double mean, double sigma);

  double sample(redundancy::NodeId node, std::uint64_t task,
                rng::Stream& rng) override;

 private:
  double mu_;
  double sigma_;
};

/// Pareto (power-law) latency with scale x_m and shape alpha: the
/// archetypal straggler tail. alpha <= 1 has infinite mean; the evaluation
/// uses alpha in (1, 3] where the mean exists but the tail still dominates
/// response time.
class ParetoLatency final : public LatencyModel {
 public:
  /// Requires scale > 0 and alpha > 0.
  ParetoLatency(double scale, double alpha);

  double sample(redundancy::NodeId node, std::uint64_t task,
                rng::Stream& rng) override;

 private:
  double scale_;
  double alpha_;
};

/// A fraction of the pool is persistently slow: every attempt on a slow
/// node takes `slowdown` times the base model's draw. Which nodes are slow
/// is decided per node id (deterministically, memoized), so churned-in
/// nodes get stable designations. Models degraded hosts — thermal
/// throttling, background load, failing disks.
class SlowNodeLatency final : public LatencyModel {
 public:
  /// `base` must outlive this model. Requires slow_fraction in [0, 1] and
  /// slowdown >= 1.
  SlowNodeLatency(LatencyModel& base, double slow_fraction, double slowdown,
                  rng::Stream seed_stream);

  double sample(redundancy::NodeId node, std::uint64_t task,
                rng::Stream& rng) override;

  /// Whether `node` is designated slow (samples and memoizes on first use).
  [[nodiscard]] bool is_slow(redundancy::NodeId node);

 private:
  LatencyModel& base_;
  double slow_fraction_;
  double slowdown_;
  rng::Stream seed_stream_;
  std::unordered_map<redundancy::NodeId, bool> slow_;
};

/// Transient stalls: with probability `stall_prob` an attempt is delayed by
/// an additional Exp(stall_mean) pause on top of the base draw — paging,
/// GC, a user reclaiming their machine for a while. Stalls hit attempts
/// independently (any node can stall), unlike SlowNodeLatency's persistent
/// designation.
class TransientStallLatency final : public LatencyModel {
 public:
  /// `base` must outlive this model. Requires stall_prob in [0, 1] and
  /// stall_mean > 0.
  TransientStallLatency(LatencyModel& base, double stall_prob,
                        double stall_mean);

  double sample(redundancy::NodeId node, std::uint64_t task,
                rng::Stream& rng) override;

 private:
  LatencyModel& base_;
  double stall_prob_;
  double stall_mean_;
};

}  // namespace smartred::fault
