#include "fault/reliability.h"

#include "common/expect.h"

namespace smartred::fault {
namespace {

struct MeanVisitor {
  double operator()(const ConstantReliability& dist) const {
    return dist.value;
  }
  double operator()(const UniformReliability& dist) const {
    return (dist.lo + dist.hi) / 2.0;
  }
  double operator()(const TwoPointReliability& dist) const {
    return dist.good_fraction * dist.good +
           (1.0 - dist.good_fraction) * dist.bad;
  }
};

struct SampleVisitor {
  rng::Stream& rng;

  double operator()(const ConstantReliability& dist) const {
    return dist.value;
  }
  double operator()(const UniformReliability& dist) const {
    SMARTRED_EXPECT(dist.lo <= dist.hi, "uniform reliability needs lo <= hi");
    return rng.uniform(dist.lo, dist.hi);
  }
  double operator()(const TwoPointReliability& dist) const {
    return rng.bernoulli(dist.good_fraction) ? dist.good : dist.bad;
  }
};

}  // namespace

double mean_reliability(const ReliabilityDistribution& dist) {
  return std::visit(MeanVisitor{}, dist);
}

double sample_reliability(const ReliabilityDistribution& dist,
                          rng::Stream& rng) {
  return std::visit(SampleVisitor{rng}, dist);
}

ReliabilityAssigner::ReliabilityAssigner(ReliabilityDistribution dist,
                                         rng::Stream seed_stream)
    : dist_(dist), seed_stream_(seed_stream) {}

double ReliabilityAssigner::reliability(redundancy::NodeId node) {
  const auto found = cache_.find(node);
  if (found != cache_.end()) return found->second;
  rng::Stream node_rng = seed_stream_.fork(std::uint64_t{node});
  const double value = sample_reliability(dist_, node_rng);
  cache_.emplace(node, value);
  return value;
}

}  // namespace smartred::fault
