// Failure models: what a node actually reports for a job.
//
// The paper's threat model (§2.2) is Byzantine with worst-case collusion —
// every failing node reports the *same* wrong value, which reduces to binary
// results. §5.3 relaxes this to non-binary results (scattered or partially
// colluding wrong answers, where plurality voting helps) and to correlated
// failures. Each relaxation is one FailureModel implementation; the
// strategies never see which model is active.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "fault/reliability.h"
#include "redundancy/types.h"

namespace smartred::fault {

/// Decides the value a node reports for one job. Implementations own all
/// randomness relevant to failures; the `rng` argument is the per-job
/// stream supplied by the substrate.
class FailureModel {
 public:
  virtual ~FailureModel() = default;

  /// The value node `node` reports for task `task` whose true answer is
  /// `correct`.
  [[nodiscard]] virtual redundancy::ResultValue report(
      redundancy::NodeId node, std::uint64_t task,
      redundancy::ResultValue correct, rng::Stream& rng) = 0;

 protected:
  FailureModel() = default;
  FailureModel(const FailureModel&) = default;
  FailureModel& operator=(const FailureModel&) = default;
};

/// The worst case of §2.2: a failing node always reports the one colluding
/// wrong value for the task (here: correct + 1), so results are effectively
/// binary. Per-node reliabilities come from a ReliabilityAssigner, making
/// this one model cover both the homogeneous analysis case and the
/// heterogeneous relaxation of §5.3.
class ByzantineCollusion final : public FailureModel {
 public:
  explicit ByzantineCollusion(ReliabilityAssigner assigner);

  redundancy::ResultValue report(redundancy::NodeId node, std::uint64_t task,
                                 redundancy::ResultValue correct,
                                 rng::Stream& rng) override;

  [[nodiscard]] ReliabilityAssigner& assigner() { return assigner_; }

 private:
  ReliabilityAssigner assigner_;
};

/// Non-binary relaxation (§5.3): a failing node reports a wrong value
/// chosen uniformly from `spread` distinct wrong answers. With spread > 1
/// wrong votes scatter and plurality voting identifies the correct value
/// more easily — the paper's "binary is the worst case" claim.
class ScatteredWrong final : public FailureModel {
 public:
  /// Requires spread >= 1 (spread == 1 reduces to full collusion).
  ScatteredWrong(ReliabilityAssigner assigner, int spread);

  redundancy::ResultValue report(redundancy::NodeId node, std::uint64_t task,
                                 redundancy::ResultValue correct,
                                 rng::Stream& rng) override;

 private:
  ReliabilityAssigner assigner_;
  int spread_;
};

/// Correlated failures (§5.3): nodes belong to clusters (e.g. geographic
/// sites); for each (task, cluster) pair there is a shared failure event
/// with probability `cluster_failure_prob` that makes every member fail on
/// that task, on top of each node's independent failure probability.
/// Cluster draws are keyed deterministically by (task, cluster), so they do
/// not depend on evaluation order. Failures collude (binary worst case).
class CorrelatedClusters final : public FailureModel {
 public:
  /// Requires clusters >= 1 and cluster_failure_prob in [0, 1].
  CorrelatedClusters(ReliabilityAssigner assigner, int clusters,
                     double cluster_failure_prob, rng::Stream cluster_seed);

  redundancy::ResultValue report(redundancy::NodeId node, std::uint64_t task,
                                 redundancy::ResultValue correct,
                                 rng::Stream& rng) override;

  /// The cluster a node belongs to (round-robin by id).
  [[nodiscard]] int cluster_of(redundancy::NodeId node) const;

  /// Effective per-job reliability implied by the layered model:
  /// (1 − q) * r_independent.
  [[nodiscard]] double effective_reliability();

 private:
  ReliabilityAssigner assigner_;
  int clusters_;
  double cluster_failure_prob_;
  rng::Stream cluster_seed_;
};

}  // namespace smartred::fault
